"""Failure-path tests: crashes, timeouts, oracle divergence, no leaks.

The substrate's robustness contract: a worker crash (SIGKILL) or a
round-deadline overrun surfaces as :class:`ProtocolError` annotated
with the guilty rank and the failing round — mirroring the
``run_many: plan {index}`` note pattern — and the pool reclaims every
shared-memory segment, so no ``/dev/shm/repro-shm-*`` blocks leak.
"""

import glob
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.parallel import ParallelCluster
from repro.parallel.oracle import OracleMismatch
from repro.parallel.pool import WorkerPool
from repro.parallel.shmem import SEGMENT_PREFIX
from repro.topology.builders import two_level

SLEEP = "repro.parallel.pool:_sleep_kernel"


def _shm_entries() -> set:
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-{os.getpid()}-*"))


@pytest.fixture
def tree():
    return two_level([3, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0)


class TestPoolFailures:
    def test_timeout_names_ranks_and_closes_pool(self):
        pool = WorkerPool(2, seed=0)
        with pytest.raises(ProtocolError, match=r"timed out.*rank"):
            pool.broadcast(SLEEP, [30.0, 30.0], timeout=0.3, label="round 7")
        assert pool.closed

    def test_timeout_error_names_the_round(self):
        pool = WorkerPool(1, seed=0)
        with pytest.raises(ProtocolError, match="round 7"):
            pool.broadcast(SLEEP, [30.0], timeout=0.3, label="round 7")

    def test_sigkill_names_rank_and_exit_code(self):
        pool = WorkerPool(2, seed=0)
        victim = pool.pids[1]
        threading.Timer(0.2, os.kill, args=(victim, signal.SIGKILL)).start()
        with pytest.raises(ProtocolError, match=r"lost worker rank 1.*-9"):
            pool.broadcast(SLEEP, [30.0, 30.0], timeout=30, label="round 3")
        assert pool.closed

    def test_failed_pool_reclaims_shared_memory(self):
        before = _shm_entries()
        pool = WorkerPool(2, seed=0)
        pool.shm.lease_array(np.int64, 50_000)
        assert _shm_entries() > before
        with pytest.raises(ProtocolError):
            pool.broadcast(SLEEP, [30.0, 30.0], timeout=0.3)
        assert _shm_entries() == before

    def test_shutdown_reclaims_shared_memory(self):
        before = _shm_entries()
        pool = WorkerPool(1, seed=0)
        pool.shm.lease_array(np.int64, 50_000)
        pool.shutdown()
        assert _shm_entries() == before

    def test_broken_pool_reports_reason(self):
        pool = WorkerPool(1, seed=0)
        with pytest.raises(ProtocolError):
            pool.broadcast(SLEEP, [30.0], timeout=0.3, label="round 2")
        with pytest.raises(ProtocolError, match="round 2"):
            pool.broadcast(SLEEP, [0.0])


class TestClusterFailures:
    def _shuffle(self, cluster):
        computes = cluster.compute_order
        with cluster.round() as ctx:
            for node in computes:
                values = np.arange(50, dtype=np.int64)
                ctx.exchange(
                    node,
                    values % len(computes),
                    values,
                    tag="shuf",
                    nodes=computes,
                )

    def test_round_timeout_annotated_with_round_and_topology(self, tree):
        pool = WorkerPool(2, seed=0)
        # A deadline no real round can meet forces the timeout path.
        cluster = ParallelCluster(tree, pool=pool, round_timeout=1e-9)
        with pytest.raises(ProtocolError) as info:
            self._shuffle(cluster)
        notes = " ".join(getattr(info.value, "__notes__", ()))
        assert "round 0" in notes
        assert tree.name in notes
        assert "process backend" in notes
        assert pool.closed

    def test_worker_crash_mid_round_annotated(self, tree):
        pool = WorkerPool(2, seed=0)
        cluster = ParallelCluster(tree, pool=pool)
        victim = pool.pids[0]

        def kill_soon():
            time.sleep(0.2)
            os.kill(victim, signal.SIGKILL)

        computes = cluster.compute_order
        threading.Thread(target=kill_soon).start()
        with pytest.raises(ProtocolError, match="lost worker rank 0"):
            # Two rounds with a pause between: the kill lands mid-run.
            for _ in range(40):
                self._shuffle(cluster)
                time.sleep(0.05)
        assert pool.closed

    def test_crashed_run_leaves_no_segments(self, tree):
        before = _shm_entries()
        pool = WorkerPool(2, seed=0)
        cluster = ParallelCluster(tree, pool=pool, round_timeout=1e-9)
        with pytest.raises(ProtocolError):
            self._shuffle(cluster)
        cluster.close()
        assert _shm_entries() == before


class TestOracleDivergence:
    def test_tampered_storage_is_caught(self, tree):
        pool = WorkerPool(2, seed=0)
        try:
            cluster = ParallelCluster(tree, pool=pool, oracle=True)
            self._seed_and_shuffle(cluster)
            node = cluster.compute_order[0]
            # Corrupt one received column behind the oracle's back.
            cluster._storage.append(
                node, "shuf", np.array([999_999], dtype=np.int64)
            )
            with pytest.raises(OracleMismatch):
                cluster.verify_oracle()
            cluster.close()
        finally:
            pool.shutdown()

    def test_divergent_round_is_caught_immediately(self, tree):
        pool = WorkerPool(2, seed=0)
        try:
            cluster = ParallelCluster(tree, pool=pool, oracle=True)
            self._seed_and_shuffle(cluster)  # round 0: identical, passes
            # Fake a delivery bug: the parallel side claims one more
            # received element than it was ever sent.  The *next*
            # round's replay must refuse it.
            node = cluster.compute_order[0]
            cluster._received_elements[node] += 1
            with pytest.raises(OracleMismatch, match="received"):
                self._seed_and_shuffle(cluster)
            cluster.close()
        finally:
            pool.shutdown()

    def _seed_and_shuffle(self, cluster):
        computes = cluster.compute_order
        with cluster.round() as ctx:
            for node in computes:
                values = np.arange(80, dtype=np.int64)
                ctx.exchange(
                    node,
                    values % len(computes),
                    values,
                    tag="shuf",
                    nodes=computes,
                )

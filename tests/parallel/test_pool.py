"""Worker-pool lifecycle, dispatch, and cross-process seeding tests."""

import multiprocessing
from multiprocessing import shared_memory

import pytest

from repro.errors import ProtocolError
from repro.parallel.pool import (
    WorkerPool,
    default_start_method,
    get_pool,
    shutdown_pools,
)

ECHO = "repro.parallel.pool:_echo_kernel"
PROBE = "repro.parallel.pool:_rank_probe"
BOOM = "repro.parallel.pool:_raise_kernel"


@pytest.fixture
def pool():
    pool = WorkerPool(2, seed=0)
    yield pool
    pool.shutdown()


class TestDispatch:
    def test_broadcast_returns_per_rank_results(self, pool):
        assert pool.broadcast(ECHO, ["a", "b"]) == ["a", "b"]

    def test_broadcast_needs_one_payload_per_rank(self, pool):
        with pytest.raises(ProtocolError, match="one payload per rank"):
            pool.broadcast(ECHO, ["only-one"])

    def test_scatter_preserves_item_order(self, pool):
        items = list(range(7))
        assert pool.scatter(ECHO, items) == items

    def test_scatter_empty_is_noop(self, pool):
        assert pool.scatter(ECHO, []) == []

    def test_bad_target_spelling_rejected(self, pool):
        with pytest.raises(ProtocolError, match="module:function"):
            pool.broadcast("notamodulepath", [None, None])

    def test_job_exception_reraised_with_rank_note(self, pool):
        with pytest.raises(ValueError, match="boom") as info:
            pool.broadcast(BOOM, ["x", "y"])
        notes = getattr(info.value, "__notes__", ())
        assert any("kernel-side note" in note for note in notes)
        assert any("worker rank 0" in note for note in notes)

    def test_pool_survives_job_exceptions(self, pool):
        with pytest.raises(ValueError):
            pool.broadcast(BOOM, ["x", "y"])
        assert not pool.closed
        assert pool.broadcast(ECHO, [1, 2]) == [1, 2]


class TestLifecycle:
    def test_requires_at_least_one_rank(self):
        with pytest.raises(ProtocolError, match="at least one rank"):
            WorkerPool(0)

    def test_shutdown_unlinks_segments(self):
        import numpy as np

        pool = WorkerPool(1, seed=0)
        segment, _ = pool.shm.lease_array(np.int64, 100)
        name = segment.name
        pool.shutdown()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_closed_pool_rejects_jobs(self):
        pool = WorkerPool(1, seed=0)
        pool.shutdown()
        with pytest.raises(ProtocolError, match="closed"):
            pool.broadcast(ECHO, [None])

    def test_get_pool_caches_per_configuration(self):
        try:
            a = get_pool(2, seed=0)
            b = get_pool(2, seed=0)
            c = get_pool(2, seed=1)
            assert a is b
            assert a is not c
        finally:
            shutdown_pools()

    def test_get_pool_is_thread_safe(self):
        # A lost check-then-create race would orphan a spawned pool
        # (live workers + segments shutdown_pools never sees); all
        # threads must receive the one cached instance.
        import threading

        pools = []
        barrier = threading.Barrier(8)

        def grab():
            barrier.wait()
            pools.append(get_pool(2, seed=0))

        try:
            threads = [threading.Thread(target=grab) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(set(map(id, pools))) == 1
        finally:
            shutdown_pools()

    def test_get_pool_replaces_closed_pool(self):
        try:
            a = get_pool(2, seed=0)
            a.shutdown()
            b = get_pool(2, seed=0)
            assert b is not a
            assert not b.closed
        finally:
            shutdown_pools()


class TestRankSeeding:
    """Satellite contract: per-rank streams are disjoint and identical
    across fork and spawn (spawn-safe derivation from the run seed)."""

    @pytest.fixture(scope="class")
    def probes_by_method(self):
        methods = [
            m
            for m in ("fork", "spawn")
            if m in multiprocessing.get_all_start_methods()
        ]
        results = {}
        for method in methods:
            pool = WorkerPool(2, start_method=method, seed=11)
            try:
                results[method] = pool.broadcast(PROBE, [{"draws": 6}] * 2)
            finally:
                pool.shutdown()
        return results

    def test_default_start_method_is_available(self):
        assert (
            default_start_method() in multiprocessing.get_all_start_methods()
        )

    def test_ranks_identify_themselves(self, probes_by_method):
        for probes in probes_by_method.values():
            assert [p["rank"] for p in probes] == [0, 1]
            assert all(p["count"] == 2 for p in probes)

    def test_streams_disjoint_across_ranks(self, probes_by_method):
        for probes in probes_by_method.values():
            assert probes[0]["draws"] != probes[1]["draws"]

    def test_streams_reproducible_across_start_methods(
        self, probes_by_method
    ):
        draws = [
            [p["draws"] for p in probes]
            for probes in probes_by_method.values()
        ]
        assert all(d == draws[0] for d in draws)

    def test_streams_reproducible_across_pools(self):
        first = WorkerPool(2, seed=11)
        try:
            probes = first.broadcast(PROBE, [{"draws": 6}] * 2)
        finally:
            first.shutdown()
        second = WorkerPool(2, seed=11)
        try:
            again = second.broadcast(PROBE, [{"draws": 6}] * 2)
        finally:
            second.shutdown()
        assert [p["draws"] for p in probes] == [p["draws"] for p in again]

    def test_seed_changes_streams(self):
        pool = WorkerPool(1, seed=12)
        try:
            probes = pool.broadcast(PROBE, [{"draws": 6}])
        finally:
            pool.shutdown()
        other = WorkerPool(1, seed=13)
        try:
            different = other.broadcast(PROBE, [{"draws": 6}])
        finally:
            other.shutdown()
        assert probes[0]["draws"] != different[0]["draws"]

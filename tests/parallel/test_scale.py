"""Tests for the scaling harness (grid logic, guards, trajectory)."""

import json

import pytest

from repro.analysis.scale import (
    MIN_PARALLEL_SPEEDUP,
    ScaleCase,
    check_scale_cases,
    run_scale_suite,
    time_scale_case,
    write_scale_trajectory,
)
from repro.analysis.speed import fat_tree, prepare_uniform_hash
from repro.errors import AnalysisError
from repro.parallel.pool import shutdown_pools


@pytest.fixture(autouse=True, scope="module")
def _shared_pools():
    yield
    shutdown_pools()


def _case(workers, seconds, baseline, identical=True):
    return ScaleCase(
        name="shuffle",
        topology="t",
        num_compute_nodes=4,
        num_elements=100,
        num_workers=workers,
        seconds=seconds,
        baseline_seconds=baseline,
        identical=identical,
    )


class TestCheckScaleCases:
    def test_identity_failure_always_raises(self):
        cases = [_case(1, 1.0, 1.0), _case(2, 0.4, 1.0, identical=False)]
        with pytest.raises(AnalysisError, match="diverged"):
            check_scale_cases(cases, available_cpus=1)

    def test_speedup_not_required_beyond_core_count(self):
        # 2-worker cell slower than baseline, but only 1 CPU: identity
        # is still checked, the speedup contract is waived.
        cases = [_case(1, 1.0, 1.0), _case(2, 2.0, 1.0)]
        check_scale_cases(cases, available_cpus=1)

    def test_speedup_required_within_core_count(self):
        cases = [_case(1, 1.0, 1.0), _case(2, 0.99, 1.0)]
        assert cases[1].speedup < MIN_PARALLEL_SPEEDUP
        with pytest.raises(AnalysisError, match="budget"):
            check_scale_cases(cases, available_cpus=8)

    def test_monotonicity_enforced_within_core_count(self):
        cases = [
            _case(1, 1.0, 1.0),
            _case(2, 0.5, 1.0),
            _case(4, 0.7, 1.0),  # still >1.2x overall, but regressed vs 2
        ]
        with pytest.raises(AnalysisError, match="regressed"):
            check_scale_cases(cases, available_cpus=8)

    def test_good_scaling_passes(self):
        cases = [_case(1, 1.0, 1.0), _case(2, 0.6, 1.0), _case(4, 0.35, 1.0)]
        check_scale_cases(cases, available_cpus=8)

    def test_require_speedup_overrides_core_guard(self):
        cases = [_case(1, 1.0, 1.0), _case(2, 2.0, 1.0)]
        with pytest.raises(AnalysisError, match="budget"):
            check_scale_cases(cases, available_cpus=1, require_speedup=True)
        check_scale_cases(cases, available_cpus=64, require_speedup=False)


class TestHarness:
    def test_single_cell_is_identical_to_oracle(self):
        tree = fat_tree(2, rack_size=3)
        prepared, label = prepare_uniform_hash(tree, 2_000, seed=3)
        case = time_scale_case(label, tree, prepared, 2, seed=3, repeats=1)
        assert case.identical
        assert case.num_workers == 2
        assert case.seconds > 0
        assert case.cost_elements > 0

    def test_small_suite_shape(self):
        cases = run_scale_suite(
            small=True, seed=3, repeats=1, workers_grid=(1, 2)
        )
        # 1 tree x 2 workloads x 2 worker counts
        assert len(cases) == 4
        assert all(case.identical for case in cases)
        baselines = [c for c in cases if c.num_workers == 1]
        assert all(c.speedup == 1.0 for c in baselines)
        check_scale_cases(cases, available_cpus=1)  # identity always

    def test_trajectory_appends_runs(self, tmp_path):
        target = tmp_path / "BENCH_SCALE.json"
        cases = [_case(1, 1.0, 1.0), _case(2, 0.5, 1.0)]
        write_scale_trajectory(cases, grid="small", path=target)
        write_scale_trajectory(cases, grid="small", path=target)
        payload = json.loads(target.read_text())
        assert payload["benchmark"] == "bench_scale"
        assert len(payload["runs"]) == 2
        assert payload["runs"][0]["cpu_count"] is not None
        assert payload["runs"][0]["cases"][1]["workers"] == 2

"""Process-backend tests: dispatch, byte-identity, engine integration."""

import numpy as np
import pytest

from repro.data.generators import random_distribution
from repro.engine import RunPlan, run, run_many
from repro.errors import AnalysisError, ProtocolError
from repro.parallel import ParallelCluster
from repro.parallel.pool import shutdown_pools
from repro.registry import register_protocol
from repro.sim.cluster import (
    Cluster,
    backend_names,
    current_backend,
    make_cluster,
    use_backend,
)
from repro.topology.builders import fat_tree, two_level


@pytest.fixture(autouse=True, scope="module")
def _shared_pools():
    yield
    shutdown_pools()


@pytest.fixture
def tree():
    return two_level([3, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0)


class TestBackendRegistry:
    def test_process_backend_registered(self):
        assert {"sim", "process"} <= set(backend_names())

    def test_default_backend_is_sim(self, tree):
        assert current_backend() == "sim"
        cluster = make_cluster(tree)
        assert cluster.backend == "sim"
        assert type(cluster) is Cluster

    def test_use_backend_dispatches_and_restores(self, tree):
        with use_backend("process", num_workers=2):
            assert current_backend() == "process"
            cluster = make_cluster(tree)
            assert isinstance(cluster, ParallelCluster)
            assert cluster.backend == "process"
            cluster.close()
        assert current_backend() == "sim"

    def test_use_backend_nests(self, tree):
        with use_backend("process", num_workers=2):
            with use_backend("sim"):
                assert type(make_cluster(tree)) is Cluster
            assert current_backend() == "process"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ProtocolError, match="unknown execution backend"):
            with use_backend("fpga"):
                pass  # pragma: no cover

    def test_explicit_kwargs_override_backend_opts(self, tree):
        with use_backend("process", num_workers=2):
            cluster = make_cluster(tree, num_workers=3)
            assert cluster.num_workers == 3
            cluster.close()


class TestRankMapping:
    def test_ranks_cover_contiguous_blocks(self, tree):
        cluster = ParallelCluster(tree, num_workers=3)
        computes = cluster.compute_order
        ranks = [cluster.rank_of(node) for node in computes]
        assert ranks == sorted(ranks)  # contiguous blocks, in order
        assert set(ranks) == {0, 1, 2}  # every rank owns someone
        cluster.close()

    def test_more_workers_than_nodes_still_covered(self, tree):
        cluster = ParallelCluster(tree, num_workers=2)
        assert {
            cluster.rank_of(node) for node in cluster.compute_order
        } == {0, 1}
        cluster.close()

    def test_non_compute_node_rejected(self, tree):
        cluster = ParallelCluster(tree, num_workers=2)
        with pytest.raises(ProtocolError, match="not a compute node"):
            cluster.rank_of("no-such-node")
        cluster.close()


class TestByteIdentity:
    def _drive(self, cluster):
        """A representative round mix: hashed unicast, multicast, send."""
        computes = cluster.compute_order
        rng = np.random.default_rng(5)
        for node in computes:
            cluster.put(node, "data", rng.integers(0, 10_000, size=300))
        with cluster.round() as ctx:
            for node in computes:
                values = cluster.take(node, "data")
                targets = values % len(computes)
                ctx.exchange(node, targets, values, tag="shuf", nodes=computes)
        with cluster.round() as ctx:
            ctx.exchange_multicast(
                computes[0],
                [0, 0, 1],
                [computes[1:4], computes[4:6]],
                np.arange(3, dtype=np.int64),
                tag="bc",
            )
            ctx.send(
                computes[2],
                computes[0],
                np.arange(5, dtype=np.int64),
                tag="back",
            )

    @pytest.mark.parametrize("num_workers", [1, 2, 3])
    def test_oracle_identity_across_worker_counts(self, tree, num_workers):
        cluster = ParallelCluster(tree, num_workers=num_workers, oracle=True)
        self._drive(cluster)
        cluster.verify_oracle()  # loads, received, storage bytes, totals
        cluster.close()

    def test_matches_standalone_sim_run(self, tree):
        parallel = ParallelCluster(tree, num_workers=2)
        sim = Cluster(tree)
        self._drive(parallel)
        self._drive(sim)
        assert parallel.ledger.total_cost() == sim.ledger.total_cost()
        for node in parallel.compute_order:
            for tag in parallel.tags_at(node):
                assert np.array_equal(
                    parallel.local(node, tag), sim.local(node, tag)
                )
        parallel.close()

    def test_verify_without_oracle_rejected(self, tree):
        cluster = ParallelCluster(tree, num_workers=2)
        with pytest.raises(ProtocolError, match="without oracle=True"):
            cluster.verify_oracle()
        cluster.close()

    def test_per_send_mode_rejected(self, tree):
        with pytest.raises(ProtocolError, match="bulk exchange path"):
            ParallelCluster(tree, num_workers=2, exchange_mode="per-send")


class TestEngineIntegration:
    @pytest.fixture
    def instance(self):
        tree = fat_tree(2, 2)
        dist = random_distribution(
            tree, r_size=600, s_size=600, policy="proportional", seed=3
        )
        return tree, dist

    def test_process_run_matches_sim(self, instance):
        tree, dist = instance
        sim = run("set-intersection", tree, dist, seed=2)
        proc = run(
            "set-intersection",
            tree,
            dist,
            seed=2,
            backend="process",
            num_workers=2,
        )
        assert proc.cost == sim.cost
        assert proc.rounds == sim.rounds

    def test_sorting_verifies_on_process_backend(self, instance):
        tree, dist = instance
        report = run(
            "sorting", tree, dist, seed=2, backend="process", num_workers=2
        )
        assert report.cost > 0  # verifier ran and accepted the output

    def test_backend_capability_enforced(self, instance):
        tree, dist = instance

        @register_protocol(
            task="sorting", name="sim-only-test", backends=("sim",)
        )
        def sim_only(tree, distribution, **kwargs):  # pragma: no cover
            raise AssertionError("must not dispatch")

        try:
            with pytest.raises(AnalysisError, match="supports backends"):
                run(
                    "sorting",
                    tree,
                    dist,
                    protocol="sim-only-test",
                    backend="process",
                )
        finally:
            # Deregister: the throwaway spec must not leak into the
            # catalog other tests (and users) enumerate.
            from repro.registry import _PROTOCOL_SPECS

            del _PROTOCOL_SPECS[("sorting", "sim-only-test")]

    def test_num_workers_requires_backend(self, instance):
        tree, dist = instance
        with pytest.raises(AnalysisError, match="requires an explicit"):
            run("sorting", tree, dist, num_workers=2)

    def test_num_workers_rejected_on_sim(self, instance):
        tree, dist = instance
        with pytest.raises(AnalysisError, match="only applies"):
            run("sorting", tree, dist, backend="sim", num_workers=2)


class TestRunManyExecutors:
    @pytest.fixture
    def plans(self):
        tree = fat_tree(2, 2)
        dist = random_distribution(
            tree, r_size=400, s_size=400, policy="proportional", seed=4
        )
        return [
            RunPlan("sorting", tree, dist, seed=seed) for seed in range(3)
        ]

    def test_process_executor_matches_thread(self, plans):
        thread = run_many(plans, workers=2)
        process = run_many(plans, workers=2, executor="process")
        assert [r.cost for r in process] == [r.cost for r in thread]
        assert [r.rounds for r in process] == [r.rounds for r in thread]

    def test_unknown_executor_rejected(self, plans):
        with pytest.raises(AnalysisError, match="executor must be"):
            run_many(plans, executor="rayon")

    def test_process_executor_annotates_failing_plan(self, plans):
        plans[1].protocol = "no-such-protocol"
        with pytest.raises(AnalysisError, match="unknown protocol") as info:
            run_many(plans, workers=2, executor="process")
        notes = " ".join(getattr(info.value, "__notes__", ()))
        assert "plan 1" in notes
        assert "worker rank" in notes

    def test_plan_with_process_backend_in_threads(self, plans):
        for plan in plans:
            plan.backend = "process"
            plan.num_workers = 2
        reports = run_many(plans, workers=2)
        baseline = run_many(plans, workers=1)
        assert [r.cost for r in reports] == [r.cost for r in baseline]

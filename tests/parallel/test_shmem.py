"""Unit tests for the shared-memory array pool (master side)."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.parallel.shmem import (
    ArraySpec,
    SharedArrayPool,
    _round_up_pow2,
    attach_array,
)


@pytest.fixture
def pool():
    pool = SharedArrayPool()
    yield pool
    pool.destroy()


class TestSizeClasses:
    def test_minimum_is_one_page(self):
        assert _round_up_pow2(1) == 4096
        assert _round_up_pow2(4096) == 4096

    def test_rounds_up_to_power_of_two(self):
        assert _round_up_pow2(4097) == 8192
        assert _round_up_pow2(100_000) == 131072


class TestLeaseRelease:
    def test_lease_returns_writable_view(self, pool):
        segment, view = pool.lease_array(np.int64, 1000)
        view[:] = np.arange(1000)
        assert segment.ndarray(np.int64, 1000)[999] == 999

    def test_release_recycles_same_size_class(self, pool):
        segment, _ = pool.lease_array(np.int64, 1000)
        pool.release(segment)
        again, _ = pool.lease_array(np.int64, 900)  # same power-of-two class
        assert again.name == segment.name
        assert pool.num_segments == 1

    def test_distinct_leases_get_distinct_segments(self, pool):
        a, _ = pool.lease_array(np.int64, 10)
        b, _ = pool.lease_array(np.int64, 10)
        assert a.name != b.name

    def test_lease_after_destroy_rejected(self, pool):
        pool.destroy()
        with pytest.raises(AnalysisError):
            pool.lease_array(np.int64, 10)

    def test_destroy_is_idempotent(self, pool):
        pool.lease_array(np.int64, 10)
        pool.destroy()
        pool.destroy()
        assert pool.num_segments == 0


class TestArraySpec:
    def test_spec_roundtrips_in_process(self, pool):
        segment, view = pool.lease_array(np.int32, 64)
        view[:] = np.arange(64, dtype=np.int32)
        spec = segment.spec(np.int32, 64)
        assert isinstance(spec, ArraySpec)
        reopened = attach_array(spec)
        assert reopened.dtype == np.int32
        assert np.array_equal(reopened, np.arange(64, dtype=np.int32))

    def test_spec_is_picklable(self, pool):
        import pickle

        segment, _ = pool.lease_array(np.int64, 8)
        spec = segment.spec(np.int64, 8)
        assert pickle.loads(pickle.dumps(spec)) == spec

"""Unit tests for run reports and aggregation."""

import pytest

from repro.analysis.report import RunReport, aggregate, summarize_reports
from repro.errors import AnalysisError


def report(**overrides) -> RunReport:
    defaults = dict(
        task="sorting",
        protocol="wts",
        topology="star(4)",
        placement="uniform",
        input_size=100,
        rounds=4,
        cost=50.0,
        lower_bound=25.0,
    )
    defaults.update(overrides)
    return RunReport(**defaults)


class TestRunReport:
    def test_ratio(self):
        assert report().ratio == 2.0

    def test_zero_bound_zero_cost(self):
        assert report(cost=0.0, lower_bound=0.0).ratio == 0.0

    def test_zero_bound_positive_cost(self):
        assert report(lower_bound=0.0).ratio == float("inf")

    def test_as_row_lengths_match_headers(self):
        from repro.analysis.report import REPORT_HEADERS

        assert len(report().as_row()) == len(REPORT_HEADERS)


class TestSummaries:
    def test_summarize_renders_all_rows(self):
        table = summarize_reports([report(), report(protocol="terasort")])
        assert "wts" in table
        assert "terasort" in table

    def test_summarize_empty_raises(self):
        with pytest.raises(AnalysisError):
            summarize_reports([])

    def test_aggregate_per_task(self):
        rows = [
            report(),
            report(cost=100.0),
            report(task="set-intersection", rounds=1, cost=30.0),
        ]
        summary = aggregate(rows)
        assert summary["sorting"]["runs"] == 2
        assert summary["sorting"]["max_rounds"] == 4
        assert summary["sorting"]["max_ratio"] == 4.0
        assert summary["set-intersection"]["max_rounds"] == 1

    def test_aggregate_ignores_infinite_ratios_in_max(self):
        rows = [report(), report(lower_bound=0.0)]
        summary = aggregate(rows)
        assert summary["sorting"]["max_ratio"] == 2.0

"""Unit tests for run reports and aggregation."""

import json
import math

import pytest

from repro.analysis.report import RunReport, aggregate, summarize_reports
from repro.errors import AnalysisError
from repro.report import GraphRunReport, PlanReport, _jsonify


def report(**overrides) -> RunReport:
    defaults = dict(
        task="sorting",
        protocol="wts",
        topology="star(4)",
        placement="uniform",
        input_size=100,
        rounds=4,
        cost=50.0,
        lower_bound=25.0,
    )
    defaults.update(overrides)
    return RunReport(**defaults)


class TestRunReport:
    def test_ratio(self):
        assert report().ratio == 2.0

    def test_zero_bound_zero_cost(self):
        assert report(cost=0.0, lower_bound=0.0).ratio == 0.0

    def test_zero_bound_positive_cost(self):
        assert report(lower_bound=0.0).ratio == float("inf")

    def test_as_row_lengths_match_headers(self):
        from repro.analysis.report import REPORT_HEADERS

        assert len(report().as_row()) == len(REPORT_HEADERS)


class TestSummaries:
    def test_summarize_renders_all_rows(self):
        table = summarize_reports([report(), report(protocol="terasort")])
        assert "wts" in table
        assert "terasort" in table

    def test_summarize_empty_raises(self):
        with pytest.raises(AnalysisError):
            summarize_reports([])

    def test_aggregate_per_task(self):
        rows = [
            report(),
            report(cost=100.0),
            report(task="set-intersection", rounds=1, cost=30.0),
        ]
        summary = aggregate(rows)
        assert summary["sorting"]["runs"] == 2
        assert summary["sorting"]["max_rounds"] == 4
        assert summary["sorting"]["max_ratio"] == 4.0
        assert summary["set-intersection"]["max_rounds"] == 1

    def test_aggregate_ignores_infinite_ratios_in_max(self):
        rows = [report(), report(lower_bound=0.0)]
        summary = aggregate(rows)
        assert summary["sorting"]["max_ratio"] == 2.0

    def test_aggregate_all_infinite_ratios_yield_none(self):
        # regression: the summary used to emit float("inf"), which
        # json.dumps turns into the non-strict `Infinity` token
        summary = aggregate([report(lower_bound=0.0)])
        assert summary["sorting"]["max_ratio"] is None
        assert summary["sorting"]["mean_ratio"] is None
        json.loads(json.dumps(summary, allow_nan=False))


class TestStrictJson:
    """Every serialized report must pass ``json.dumps(allow_nan=False)``."""

    def test_run_report_with_infinite_ratio(self):
        row = report(lower_bound=0.0, meta={"rho": float("inf")})
        payload = json.loads(json.dumps(row.to_dict(), allow_nan=False))
        assert payload["ratio"] is None
        assert payload["meta"]["rho"] is None

    def test_nan_in_meta_becomes_null(self):
        row = report(meta={"skew": float("nan"), "arr": [1.0, float("-inf")]})
        payload = json.loads(json.dumps(row.to_dict(), allow_nan=False))
        assert payload["meta"]["skew"] is None
        assert payload["meta"]["arr"] == [1.0, None]

    def test_plan_report_round_trips_strictly(self):
        plan = PlanReport(
            query="q",
            strategy="optimized",
            topology="star(4)",
            stages=(report(lower_bound=0.0),),
            estimated_cost=10.0,
            output_rows=3,
            meta={"weights": {float("inf"), 2.0}},
        )
        payload = json.loads(json.dumps(plan.to_dict(), allow_nan=False))
        assert payload["stages"][0]["ratio"] is None
        assert PlanReport.from_dict(payload).query == "q"

    def test_graph_report_infinite_ratio_serializes(self):
        graph = GraphRunReport(
            task="connected-components",
            protocol="tree",
            topology="star(4)",
            placement="uniform",
            num_vertices=5,
            num_edges=4,
            supersteps=(report(),),
            lower_bound=0.0,
            converged=True,
        )
        assert graph.cost > 0 and math.isinf(graph.ratio)
        payload = json.loads(json.dumps(graph.to_dict(), allow_nan=False))
        assert payload["ratio"] is None

    def test_jsonify_sorts_mixed_type_sets_deterministically(self):
        # regression: sorted() over {1, "a"} raises TypeError
        result = _jsonify(frozenset({1, "a", 2.5}))
        assert result == [2.5, 1, "a"]  # (type name, repr) order
        json.loads(json.dumps(result, allow_nan=False))

    def test_jsonify_orders_homogeneous_sets_numerically(self):
        assert _jsonify(frozenset({10, 2})) == [2, 10]

"""Tests for the serve benchmark harness (repro.analysis.serve)."""

import json

import pytest

import repro
from repro.analysis.serve import (
    FULL_MIN_SPEEDUP,
    IDENTITY_ONLY_MIN_SPEEDUP,
    SMALL_MIN_SPEEDUP,
    ServeCase,
    build_workload,
    check_serve_cases,
    serve_case,
    serve_table,
    strip_report,
    write_serve_trajectory,
)
from repro.analysis.speed import fat_tree
from repro.errors import AnalysisError
from repro.obs.regress import BANDS, check_trajectory_file


@pytest.fixture(scope="module")
def tree():
    return fat_tree(3)


class TestWorkload:
    def test_deterministic(self, tree):
        first = build_workload(tree, 32, rows=60, seed=7)
        second = build_workload(tree, 32, rows=60, seed=7)
        assert first[0] == second[0]  # _Query is a frozen dataclass

    def test_mix_shape(self, tree):
        workload, distributions, (catalog, plan_queries) = build_workload(
            tree, 32, rows=60, seed=7
        )
        plans = [q for q in workload if q.kind == "plan"]
        tasks = [q for q in workload if q.kind == "task"]
        assert len(workload) == 32
        assert len(plans) == 8  # every fourth query
        assert {q.task for q in tasks} == {
            "set-intersection",
            "equijoin",
            "groupby-aggregate",
            "sorting",
        }
        assert len(distributions) == 4
        # every placement sees traffic, and the task/placement pairing
        # rotates (not a fixed one-to-one lockstep)
        assert {q.distribution_index for q in tasks} == {0, 1, 2, 3}
        pairings = {(q.task, q.distribution_index) for q in tasks}
        assert len(pairings) > 4
        # the catalog serves both benchmark shapes
        assert {"R0", "F", "D1"} <= set(catalog)
        assert len(plan_queries) == 3

    def test_plan_queries_cycle(self, tree):
        workload, _, _ = build_workload(tree, 32, rows=60, seed=7)
        plan_indices = [q.query_index for q in workload if q.kind == "plan"]
        assert plan_indices == [0, 1, 2, 0, 1, 2, 0, 1]


class TestServeCase:
    def test_sim_case_is_identical_and_counted(self, tree):
        case = serve_case("tiny", tree, 16, rows=60, seed=7)
        assert case.identical
        assert case.num_queries == 16
        assert case.cost_elements > 0
        assert case.cold_seconds > 0 and case.warm_seconds > 0
        assert case.artifact_cache["misses"] == 1
        assert case.artifact_cache["hits"] >= 15
        # three plan shapes, each compiled once then served from cache
        assert case.plan_cache["misses"] == 3
        assert case.plan_cache["hits"] == 1

    def test_cost_elements_deterministic(self, tree):
        first = serve_case("tiny", tree, 12, rows=60, seed=7)
        second = serve_case("tiny", tree, 12, rows=60, seed=7)
        assert first.cost_elements == second.cost_elements

    def test_derived_rates(self):
        case = ServeCase(
            name="x",
            topology="t",
            num_queries=100,
            cold_seconds=4.0,
            warm_seconds=2.0,
        )
        assert case.cold_qps == 25.0
        assert case.warm_qps == 50.0
        assert case.speedup == 2.0
        payload = case.to_dict()
        assert payload["speedup"] == 2.0
        assert payload["min_speedup"] == SMALL_MIN_SPEEDUP


class TestCheck:
    def _case(self, **overrides):
        fields = dict(
            name="x",
            topology="t",
            num_queries=10,
            cold_seconds=4.0,
            warm_seconds=1.0,
            identical=True,
        )
        fields.update(overrides)
        return ServeCase(**fields)

    def test_passes_on_good_case(self):
        check_serve_cases([self._case()])

    def test_identity_flip_fails(self):
        with pytest.raises(AnalysisError, match="diverged"):
            check_serve_cases([self._case(identical=False)])

    def test_slow_warm_path_fails(self):
        slow = self._case(warm_seconds=3.9, min_speedup=FULL_MIN_SPEEDUP)
        with pytest.raises(AnalysisError, match="throughput"):
            check_serve_cases([slow])

    def test_identity_only_case_skips_timing(self):
        crawl = self._case(
            warm_seconds=40.0, min_speedup=IDENTITY_ONLY_MIN_SPEEDUP
        )
        check_serve_cases([crawl])

    def test_explicit_budget_overrides_case(self):
        case = self._case(warm_seconds=3.0)
        check_serve_cases([case], min_speedup=1.0)
        with pytest.raises(AnalysisError):
            check_serve_cases([case], min_speedup=2.0)


class TestTrajectory:
    def test_write_and_sentinel(self, tree, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_SERVE_JSON", str(tmp_path / "serve.json"))
        cases = [serve_case("tiny", tree, 12, rows=60, seed=7)]
        path = write_serve_trajectory(cases, grid="small")
        payload = json.loads(path.read_text())
        assert payload["benchmark"] == "bench_serve"
        assert payload["runs"][0]["grid"] == "small"
        entry = payload["runs"][0]["cases"][0]
        assert entry["identical"] is True
        assert entry["speedup"] > 0
        # the sentinel has bands for this file and sees no regression
        # in a single-run trajectory
        assert "bench_serve" in BANDS
        verdict, _ = check_trajectory_file(path)
        assert verdict == "pass"

    def test_sentinel_fails_identity_flip(self, tree, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_SERVE_JSON", str(tmp_path / "serve.json"))
        case = serve_case("tiny", tree, 12, rows=60, seed=7)
        write_serve_trajectory([case], grid="small")
        case.identical = False
        path = write_serve_trajectory([case], grid="small")
        verdict, checks = check_trajectory_file(path)
        assert verdict == "fail"
        assert any(
            c.metric == "identical" and c.verdict == "fail" for c in checks
        )

    def test_sentinel_warns_on_speedup_regression(
        self, tree, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("BENCH_SERVE_JSON", str(tmp_path / "serve.json"))
        case = serve_case("tiny", tree, 12, rows=60, seed=7)
        baseline = ServeCase(
            name=case.name,
            topology=case.topology,
            num_queries=case.num_queries,
            cold_seconds=10.0,
            warm_seconds=1.0,
            identical=True,
            cost_elements=case.cost_elements,
        )
        write_serve_trajectory([baseline], grid="small")
        regressed = ServeCase(
            name=case.name,
            topology=case.topology,
            num_queries=case.num_queries,
            cold_seconds=10.0,
            warm_seconds=5.0,
            identical=True,
            cost_elements=case.cost_elements,
        )
        path = write_serve_trajectory([regressed], grid="small")
        verdict, checks = check_trajectory_file(path)
        assert verdict in ("warn", "fail")
        assert any(
            c.metric == "speedup" and c.verdict in ("warn", "fail")
            for c in checks
        )


class TestTable:
    def test_serve_table_rows(self, tree):
        case = serve_case("tiny", tree, 8, rows=60, seed=7)
        headers, rows = serve_table([case])
        assert headers[0] == "workload"
        assert rows[0][0] == "tiny"
        assert rows[0][-1] == "yes"


class TestStripReport:
    def test_strips_wall_clock_everywhere(self, tree):
        dist = repro.random_distribution(
            tree, r_size=80, s_size=80, policy="zipf", seed=1
        )
        report = repro.run("set-intersection", tree, dist)
        payload = strip_report(report)
        assert "wall_time_s" not in payload
        assert payload["cost"] == report.cost

        def no_wall(value):
            if isinstance(value, dict):
                assert "wall_time_s" not in value
                assert "metrics" not in value
                for inner in value.values():
                    no_wall(inner)
            elif isinstance(value, list):
                for inner in value:
                    no_wall(inner)

        no_wall(payload)

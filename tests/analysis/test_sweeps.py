"""Unit tests for the sweep framework and ASCII charts."""

import pytest

from repro.analysis.sweeps import Sweep, ascii_chart
from repro.errors import AnalysisError


class TestSweep:
    def test_add_and_series(self):
        sweep = Sweep("test")
        sweep.add("a", 1, 10)
        sweep.add("a", 2, 20)
        assert sweep.series["a"] == [(1.0, 10.0), (2.0, 20.0)]

    def test_run_evaluates_runners(self):
        sweep = Sweep().run(
            [1, 2, 3], {"square": lambda x: x * x, "double": lambda x: 2 * x}
        )
        assert sweep.series["square"] == [(1, 1), (2, 4), (3, 9)]
        assert sweep.series["double"] == [(1, 2), (2, 4), (3, 6)]

    def test_ratios(self):
        sweep = Sweep().run(
            [1, 2, 4], {"cost": lambda x: 3 * x, "bound": lambda x: x}
        )
        assert sweep.ratios("cost", "bound") == [3.0, 3.0, 3.0]

    def test_ratios_reject_mismatched_grids(self):
        sweep = Sweep()
        sweep.add("a", 1, 1)
        sweep.add("b", 2, 1)
        with pytest.raises(AnalysisError):
            sweep.ratios("a", "b")

    def test_ratio_with_zero_denominator(self):
        sweep = Sweep()
        sweep.add("a", 1, 5)
        sweep.add("b", 1, 0)
        assert sweep.ratios("a", "b") == [float("inf")]


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            {"one": [(0, 0), (1, 1)], "two": [(0, 1), (1, 0)]}
        )
        assert "o one" in chart
        assert "x two" in chart
        assert "o" in chart.splitlines()[0] or any(
            "o" in line for line in chart.splitlines()
        )

    def test_axis_labels(self):
        chart = ascii_chart({"s": [(10, 100), (1000, 5000)]})
        assert "100" in chart  # y max label region
        assert "1e+03" in chart or "1000" in chart

    def test_title(self):
        chart = ascii_chart({"s": [(0, 0), (1, 1)]}, title="My Chart")
        assert chart.splitlines()[0] == "My Chart"

    def test_log_scales(self):
        chart = ascii_chart(
            {"s": [(1, 1), (10, 100), (100, 10_000)]},
            log_x=True,
            log_y=True,
        )
        assert "s" in chart

    def test_log_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            ascii_chart({"s": [(0, 1)]}, log_x=True)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_chart({})

    def test_single_point(self):
        chart = ascii_chart({"s": [(5, 5)]})
        assert "s" in chart

    def test_sweep_chart_wrapper(self):
        sweep = Sweep("wrapped").run([1, 2], {"y": lambda x: x})
        assert sweep.chart().splitlines()[0] == "wrapped"

"""Unit tests for the experiment runners."""

import pytest

from repro.analysis.runner import (
    CARTESIAN_PROTOCOLS,
    INTERSECTION_PROTOCOLS,
    SORTING_PROTOCOLS,
    run_cartesian,
    run_intersection,
    run_sorting,
)
from repro.analysis.suites import (
    instance_grid,
    placement_policies,
    standard_topologies,
)
from repro.data.generators import random_distribution
from repro.errors import AnalysisError
from repro.registry import get_protocol
from repro.topology.builders import star, two_level


@pytest.fixture
def instance():
    tree = two_level([2, 3], uplink_bandwidth=0.5)
    dist = random_distribution(tree, r_size=100, s_size=100, seed=1)
    return tree, dist


class TestRunners:
    def test_intersection_report_fields(self, instance):
        tree, dist = instance
        report = run_intersection(tree, dist, placement="uniform")
        assert report.task == "set-intersection"
        assert report.rounds == 1
        assert report.lower_bound > 0
        assert report.placement == "uniform"

    def test_cartesian_report(self, instance):
        tree, dist = instance
        report = run_cartesian(tree, dist)
        assert report.task == "cartesian-product"
        assert report.cost >= 0

    def test_sorting_report(self, instance):
        tree, dist = instance
        report = run_sorting(tree, dist)
        assert report.task == "sorting"
        assert report.rounds <= 4

    @staticmethod
    def _instance_for(task, protocol, default):
        """Build a star instance when the spec says the protocol needs one."""
        if get_protocol(task, protocol).topology == "star":
            tree = star(4)
            return tree, random_distribution(
                tree, r_size=50, s_size=50, seed=2
            )
        return default

    @pytest.mark.parametrize("protocol", sorted(INTERSECTION_PROTOCOLS))
    def test_all_intersection_protocols_run(self, instance, protocol):
        tree, dist = self._instance_for("set-intersection", protocol, instance)
        report = run_intersection(tree, dist, protocol=protocol)
        assert report.cost >= 0

    @pytest.mark.parametrize("protocol", sorted(CARTESIAN_PROTOCOLS))
    def test_all_cartesian_protocols_run(self, instance, protocol):
        tree, dist = self._instance_for("cartesian-product", protocol, instance)
        report = run_cartesian(tree, dist, protocol=protocol)
        assert report.cost >= 0

    @pytest.mark.parametrize("protocol", sorted(SORTING_PROTOCOLS))
    def test_all_sorting_protocols_run(self, instance, protocol):
        tree, dist = instance
        report = run_sorting(tree, dist, protocol=protocol)
        assert report.cost >= 0

    def test_unknown_protocol_rejected(self, instance):
        tree, dist = instance
        with pytest.raises(AnalysisError, match="unknown protocol"):
            run_intersection(tree, dist, protocol="bogus")

    def test_verification_can_be_disabled(self, instance):
        tree, dist = instance
        report = run_intersection(tree, dist, verify=False)
        assert report.cost >= 0


class TestSuites:
    def test_standard_topologies_are_symmetric(self):
        for tree in standard_topologies():
            assert tree.is_symmetric

    def test_policies(self):
        assert "uniform" in placement_policies()
        assert "zipf" in placement_policies()

    def test_instance_grid_covers_product(self):
        instances = list(
            instance_grid(r_size=20, s_size=20, include_random=False)
        )
        expected = len(standard_topologies(include_random=False)) * len(
            placement_policies()
        )
        assert len(instances) == expected
        for tree, policy, dist in instances:
            assert dist.total("R") == 20
            assert dist.total("S") == 20

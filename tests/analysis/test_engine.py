"""Tests for the unified engine: run(), run_many(), report round-trips."""

import json

import pytest

import repro
from repro.engine import RunPlan, run, run_many
from repro.errors import AnalysisError, ProtocolError
from repro.report import RunReport
from repro.topology.builders import star, two_level


@pytest.fixture
def instance():
    tree = two_level([2, 3], uplink_bandwidth=0.5)
    dist = repro.random_distribution(tree, r_size=100, s_size=100, seed=1)
    return tree, dist


class TestRun:
    def test_default_protocol_is_topology_aware(self, instance):
        tree, dist = instance
        report = run("set-intersection", tree, dist)
        assert report.task == "set-intersection"
        assert report.protocol == "tree-intersect"
        assert report.lower_bound > 0

    def test_task_alias(self, instance):
        tree, dist = instance
        report = run("intersection", tree, dist)
        assert report.task == "set-intersection"

    def test_matches_legacy_wrappers(self, instance):
        tree, dist = instance
        for task, legacy in (
            ("set-intersection", repro.run_intersection),
            ("cartesian-product", repro.run_cartesian),
            ("sorting", repro.run_sorting),
        ):
            new = run(task, tree, dist, seed=0, placement="uniform")
            old = legacy(tree, dist, placement="uniform")
            assert new.cost == old.cost
            assert new.rounds == old.rounds
            assert new.lower_bound == old.lower_bound
            assert new.protocol == old.protocol

    def test_seed_routed_only_to_seeded_protocols(self, instance):
        tree, dist = instance
        # gather declares accepts_seed=False; a bogus seed must not reach
        # it (passing one directly would raise TypeError).
        report = run("set-intersection", tree, dist, protocol="gather", seed=99)
        assert report.cost >= 0
        # seeded protocols actually consume the seed: different seeds may
        # move cost, same seed must reproduce it exactly.
        first = run("set-intersection", tree, dist, protocol="tree", seed=3)
        second = run("set-intersection", tree, dist, protocol="tree", seed=3)
        assert first.cost == second.cost

    def test_extra_opts_forwarded(self, instance):
        tree, dist = instance
        # The ablation hook: one block disables partitioning.
        report = run(
            "set-intersection",
            tree,
            dist,
            protocol="tree",
            blocks=[frozenset(tree.compute_nodes)],
        )
        assert report.cost >= 0

    def test_unknown_task_rejected(self, instance):
        tree, dist = instance
        with pytest.raises(AnalysisError, match="unknown task"):
            run("matrix-multiply", tree, dist)

    def test_unknown_protocol_rejected(self, instance):
        tree, dist = instance
        with pytest.raises(AnalysisError, match="unknown protocol"):
            run("sorting", tree, dist, protocol="bogus")

    def test_query_tasks_run_and_verify(self):
        tree = two_level([2, 2], uplink_bandwidth=1.0)
        nodes = tree.left_to_right_compute_order()
        keys = list(range(1, 9))
        dist = repro.Distribution(
            {
                node: {
                    "R": repro.encode_tuples(
                        keys[i::len(nodes)], [0] * len(keys[i::len(nodes)])
                    ),
                    "S": repro.encode_tuples(
                        keys[i::len(nodes)], [1] * len(keys[i::len(nodes)])
                    ),
                }
                for i, node in enumerate(nodes)
            }
        )
        join = run("equijoin", tree, dist, seed=1)
        assert join.task == "equijoin"
        assert join.lower_bound > 0
        agg = run("groupby-aggregate", tree, dist, seed=1)
        assert agg.task == "groupby-aggregate"
        assert agg.lower_bound == 0.0


class TestRunMany:
    def test_reports_in_plan_order(self, instance):
        tree, dist = instance
        star_tree = star(4)
        star_dist = repro.random_distribution(
            star_tree, r_size=50, s_size=50, seed=2
        )
        plans = [
            RunPlan("sorting", tree, dist, placement="a"),
            RunPlan("set-intersection", tree, dist, placement="b"),
            RunPlan(
                "cartesian-product",
                star_tree,
                star_dist,
                protocol="whc",
                placement="c",
            ),
            RunPlan("set-intersection", tree, dist, placement="d"),
        ]
        reports = run_many(plans, workers=4)
        assert [r.placement for r in reports] == ["a", "b", "c", "d"]
        assert [r.task for r in reports] == [p.task for p in plans]

    def test_parallel_matches_sequential(self, instance):
        tree, dist = instance
        plans = [
            RunPlan("set-intersection", tree, dist, seed=s) for s in range(4)
        ]
        parallel = run_many(plans, workers=4)
        sequential = run_many(plans, workers=1)
        assert [r.cost for r in parallel] == [r.cost for r in sequential]

    def test_dict_plans_accepted(self, instance):
        tree, dist = instance
        reports = run_many(
            [{"task": "sorting", "tree": tree, "distribution": dist}]
        )
        assert reports[0].task == "sorting"

    def test_empty_plan_list(self):
        assert run_many([]) == []

    def test_worker_error_propagates(self, instance):
        tree, dist = instance
        plans = [
            RunPlan("set-intersection", tree, dist),
            RunPlan("set-intersection", tree, dist, protocol="bogus"),
        ]
        with pytest.raises(AnalysisError, match="unknown protocol"):
            run_many(plans, workers=2)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failure_annotated_with_plan_index_and_task(
        self, instance, workers
    ):
        tree, dist = instance
        plans = [
            RunPlan("set-intersection", tree, dist),
            RunPlan("sorting", tree, dist, protocol="bogus"),
        ]
        with pytest.raises(AnalysisError) as excinfo:
            run_many(plans, workers=workers)
        # the propagated exception pins the failing cell: index 1, task
        # 'sorting' (as a note on 3.11+, folded into args on 3.10)
        notes = "\n".join(getattr(excinfo.value, "__notes__", []))
        rendered = f"{excinfo.value}\n{notes}"
        assert "plan 1" in rendered
        assert "'sorting'" in rendered


class TestReportSerialization:
    def test_json_round_trip(self, instance):
        tree, dist = instance
        report = run("sorting", tree, dist, placement="zipf")
        payload = json.loads(json.dumps(report.to_dict()))
        rebuilt = RunReport.from_dict(payload)
        assert rebuilt.task == report.task
        assert rebuilt.protocol == report.protocol
        assert rebuilt.topology == report.topology
        assert rebuilt.placement == "zipf"
        assert rebuilt.input_size == report.input_size
        assert rebuilt.rounds == report.rounds
        assert rebuilt.cost == report.cost
        assert rebuilt.lower_bound == report.lower_bound
        assert rebuilt.ratio == pytest.approx(report.ratio)

    def test_to_dict_is_json_serializable_with_numpy_meta(self, instance):
        tree, dist = instance
        # sorting meta carries numpy arrays (splitters, order) — the
        # export must not choke on them.
        report = run("sorting", tree, dist)
        json.dumps(report.to_dict())

    def test_from_dict_missing_field_rejected(self):
        with pytest.raises(AnalysisError, match="missing field"):
            RunReport.from_dict({"task": "sorting"})

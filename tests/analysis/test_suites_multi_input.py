"""The standard grid covers the multi-input relational tasks too."""

import pytest

import repro
from repro.analysis.suites import (
    ALL_SUITE_TASKS,
    DEFAULT_SUITE_TASKS,
    GRAPH_SUITE_TASKS,
    TUPLE_SUITE_TASKS,
    instance_grid,
    standard_plans,
)
from repro.analysis.sweeps import Sweep
from repro.data.generators import random_tuple_distribution
from repro.engine import run_many
from repro.topology.builders import two_level


class TestSuiteGrid:
    def test_all_tasks_cover_the_catalog(self):
        assert set(ALL_SUITE_TASKS) == (
            set(DEFAULT_SUITE_TASKS)
            | set(TUPLE_SUITE_TASKS)
            | set(GRAPH_SUITE_TASKS)
        )
        for task in ALL_SUITE_TASKS:
            assert repro.get_task(task).name == task

    def test_standard_plans_include_relational_tasks(self):
        plans = standard_plans(
            r_size=60,
            s_size=60,
            seed=0,
            tasks=ALL_SUITE_TASKS,
            include_random=False,
        )
        tasks = {plan.task for plan in plans}
        assert "equijoin" in tasks
        assert "groupby-aggregate" in tasks
        # one plan per (topology, policy, task)
        per_task = [p for p in plans if p.task == "equijoin"]
        assert len(per_task) == len(plans) // len(ALL_SUITE_TASKS)

    def test_relational_plans_execute_and_verify(self):
        plans = [
            plan
            for plan in standard_plans(
                r_size=80,
                s_size=80,
                seed=3,
                tasks=TUPLE_SUITE_TASKS,
                include_random=False,
            )
        ]
        reports = run_many(plans[:8], workers=1)
        for report in reports:
            assert report.task in TUPLE_SUITE_TASKS
            assert report.rounds >= 1
            # satellite: the group-by bound is registered, so every
            # relational report has a real (possibly zero) bound field
            assert report.lower_bound >= 0.0

    def test_instance_grid_tuples_mode(self):
        cells = list(
            instance_grid(
                r_size=50, s_size=50, seed=1, include_random=False, tuples=True
            )
        )
        assert cells
        for _, _, dist in cells[:4]:
            keys, _ = repro.decode_tuples(dist.relation("R"))
            assert keys.max() < 50  # keyed tuples, not raw 2^40 sets


class TestTupleGenerator:
    def test_sizes_and_tags(self):
        tree = two_level([2, 2])
        dist = random_tuple_distribution(
            tree, r_size=40, s_size=70, key_space=8, seed=2
        )
        assert dist.total("R") == 40
        assert dist.total("S") == 70

    def test_policies(self):
        tree = two_level([2, 2], uplink_bandwidth=2.0)
        for policy in ("uniform", "zipf", "single-heavy", "proportional"):
            dist = random_tuple_distribution(
                tree, r_size=30, s_size=30, policy=policy, seed=1
            )
            assert dist.total() == 60

    def test_unknown_policy(self):
        tree = two_level([2, 2])
        with pytest.raises(repro.DistributionError):
            random_tuple_distribution(
                tree, r_size=10, s_size=10, policy="bogus"
            )


class TestSweepOpts:
    def test_run_protocols_forwards_opts(self):
        tree = two_level([2, 2], uplink_bandwidth=1.0)

        def make_instance(x):
            return tree, random_tuple_distribution(
                tree, r_size=int(x), s_size=int(x), key_space=16, seed=0
            )

        sweep = Sweep("join sweep").run_protocols(
            [40, 80],
            make_instance,
            task="equijoin",
            protocols=["tree", "gather"],
            opts={"payload_bits": 20},
        )
        assert set(sweep.series) >= {"tree", "gather", "lower-bound"}
        assert len(sweep.series["tree"]) == 2

    def test_run_protocols_aggregate_op(self):
        tree = two_level([2, 2], uplink_bandwidth=1.0)

        def make_instance(x):
            return tree, random_tuple_distribution(
                tree, r_size=int(x), s_size=10, key_space=8, seed=0
            )

        sweep = Sweep().run_protocols(
            [30],
            make_instance,
            task="groupby-aggregate",
            protocols=["tree", "uniform-hash"],
            opts={"op": "max"},
        )
        assert len(sweep.series["uniform-hash"]) == 1

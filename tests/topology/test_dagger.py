"""Unit tests for the G-dagger orientation (Lemma 4) and its covers."""

import pytest

from repro.errors import TopologyError
from repro.topology.builders import star, two_level
from repro.topology.dagger import (
    build_dagger,
    cover_value,
    minimal_covers,
    optimal_cover,
)
from repro.topology.tree import TreeTopology


class TestOrientation:
    def test_star_points_to_center_under_balance(self):
        tree = star(4)
        dagger = build_dagger(tree, {f"v{i}": 10 for i in range(1, 5)})
        assert dagger.root == "w"
        assert not dagger.root_is_compute
        assert all(dagger.parent[v] == "w" for v in tree.compute_nodes)

    def test_heavy_node_becomes_root(self):
        tree = star(4)
        weights = {"v1": 100, "v2": 1, "v3": 1, "v4": 1}
        dagger = build_dagger(tree, weights)
        assert dagger.root == "v1"
        assert dagger.root_is_compute

    def test_out_degree_at_most_one(self, simple_two_level):
        dagger = build_dagger(
            simple_two_level, {f"v{i}": i for i in range(1, 6)}
        )
        # parent is a dict: one out-edge per node by construction; verify
        # the root is the only node without a parent.
        missing = [
            v for v in simple_two_level.nodes if v not in dagger.parent
        ]
        assert missing == [dagger.root]

    def test_exact_tie_has_unique_root(self):
        # Two nodes with exactly half the data each: both link
        # orientations satisfy the paper's rule; the pivot tie-break
        # must still produce a unique root (Lemma 4(2)).
        tree = star(2)
        dagger = build_dagger(tree, {"v1": 5, "v2": 5})
        roots = [v for v in tree.nodes if v not in dagger.parent]
        assert len(roots) == 1

    def test_zero_weights_everywhere(self):
        tree = star(3)
        dagger = build_dagger(tree, {})
        roots = [v for v in tree.nodes if v not in dagger.parent]
        assert len(roots) == 1

    def test_out_bandwidths_match_tree(self, simple_two_level):
        dagger = build_dagger(
            simple_two_level, {f"v{i}": 1 for i in range(1, 6)}
        )
        for node, parent in dagger.parent.items():
            assert dagger.out_bandwidth[node] == simple_two_level.bandwidth(
                node, parent
            )

    def test_rejects_weight_on_router(self, simple_two_level):
        with pytest.raises(TopologyError, match="not a compute node"):
            build_dagger(simple_two_level, {"core": 5})

    def test_rejects_asymmetric_tree(self):
        tree = TreeTopology({("a", "b"): 1.0, ("b", "a"): 2.0}, ["a", "b"])
        with pytest.raises(TopologyError, match="symmetric"):
            build_dagger(tree, {"a": 1})

    def test_children_and_leaves(self, simple_two_level):
        dagger = build_dagger(
            simple_two_level, {f"v{i}": 1 for i in range(1, 6)}
        )
        for leaf in dagger.dagger_leaves():
            assert not dagger.children(leaf)

    def test_subtree_nodes(self):
        tree = two_level([2, 2])
        dagger = build_dagger(tree, {"v1": 1, "v2": 1, "v3": 5, "v4": 5})
        root_subtree = dagger.subtree_nodes(dagger.root)
        assert root_subtree == tree.nodes


class TestCovers:
    def make_dagger(self):
        tree = two_level(
            [2, 2], leaf_bandwidth=[1.0, 4.0], uplink_bandwidth=[2.0, 8.0]
        )
        return build_dagger(tree, {v: 1 for v in tree.compute_nodes})

    def test_optimal_cover_is_minimal_over_enumeration(self):
        dagger = self.make_dagger()
        _, best = optimal_cover(dagger)
        enumerated = [
            cover_value(dagger, cover) for cover in minimal_covers(dagger)
        ]
        assert best == pytest.approx(min(enumerated))

    def test_optimal_cover_is_a_minimal_cover(self):
        dagger = self.make_dagger()
        cover, value = optimal_cover(dagger)
        assert cover in set(minimal_covers(dagger))
        assert cover_value(dagger, cover) == pytest.approx(value)

    def test_enumeration_includes_leaf_cover(self):
        dagger = self.make_dagger()
        leaf_cover = frozenset(dagger.dagger_leaves())
        assert leaf_cover in set(minimal_covers(dagger))

    def test_root_alone_excluded(self):
        dagger = self.make_dagger()
        for cover in minimal_covers(dagger):
            assert cover != frozenset({dagger.root})

    def test_every_cover_covers_every_leaf(self):
        dagger = self.make_dagger()
        for cover in minimal_covers(dagger):
            for leaf in dagger.dagger_leaves():
                ancestors = {leaf}
                node = leaf
                while node in dagger.parent:
                    node = dagger.parent[node]
                    ancestors.add(node)
                assert ancestors & cover, (leaf, cover)

    def test_single_node_tree_has_no_cover(self):
        tree = TreeTopology({}, ["only"])
        dagger = build_dagger(tree, {"only": 3})
        with pytest.raises(TopologyError):
            optimal_cover(dagger)

    def test_star_cover_is_all_leaves_when_center_rooted(self):
        tree = star(3, bandwidth=[1.0, 1.0, 1.0])
        dagger = build_dagger(tree, {v: 1 for v in tree.compute_nodes})
        cover, value = optimal_cover(dagger)
        assert cover == tree.compute_nodes
        assert value == pytest.approx(3**0.5)

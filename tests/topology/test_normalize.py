"""Unit tests for the Section 2.1 w.l.o.g. normalizations."""

import math

import pytest

from repro.errors import TopologyError
from repro.topology.builders import star, two_level
from repro.topology.normalize import (
    ensure_compute_leaves,
    normalize,
    suppress_degree_two,
)
from repro.topology.tree import TreeTopology


def tree_with_internal_compute():
    """a - hub - b where 'hub' both routes and computes."""
    edges = {("a", "hub"): 1.0, ("hub", "b"): 2.0}
    return TreeTopology.from_undirected(edges, ["a", "hub", "b"])


class TestEnsureComputeLeaves:
    def test_leaf_computes_untouched(self, simple_star):
        result = ensure_compute_leaves(simple_star)
        assert result.tree.compute_nodes == simple_star.compute_nodes
        assert result.relocated() == {}

    def test_internal_compute_moved_to_fresh_leaf(self):
        tree = tree_with_internal_compute()
        result = ensure_compute_leaves(tree)
        assert "hub" not in result.tree.compute_nodes
        new_leaf = result.node_map["hub"]
        assert new_leaf in result.tree.compute_nodes
        assert result.tree.degree(new_leaf) == 1

    def test_infinite_virtual_bandwidth_default(self):
        result = ensure_compute_leaves(tree_with_internal_compute())
        leaf = result.node_map["hub"]
        assert result.tree.bandwidth(leaf, "hub") == math.inf

    def test_sum_virtual_bandwidth(self):
        result = ensure_compute_leaves(
            tree_with_internal_compute(), virtual_bandwidth="sum"
        )
        leaf = result.node_map["hub"]
        assert result.tree.bandwidth(leaf, "hub") == 3.0  # 1 + 2

    def test_explicit_virtual_bandwidth(self):
        result = ensure_compute_leaves(
            tree_with_internal_compute(), virtual_bandwidth=5.0
        )
        leaf = result.node_map["hub"]
        assert result.tree.bandwidth(leaf, "hub") == 5.0

    def test_invalid_virtual_bandwidth(self):
        with pytest.raises(TopologyError):
            ensure_compute_leaves(
                tree_with_internal_compute(), virtual_bandwidth=-1.0
            )

    def test_fresh_leaf_name_avoids_collision(self):
        edges = {("a", "hub"): 1.0, ("hub", "hub::leaf"): 2.0}
        tree = TreeTopology.from_undirected(edges, ["a", "hub", "hub::leaf"])
        result = ensure_compute_leaves(tree)
        assert result.node_map["hub"] != "hub::leaf"


class TestSuppressDegreeTwo:
    def test_splices_router_chain(self):
        edges = {("a", "x"): 3.0, ("x", "y"): 1.0, ("y", "b"): 2.0}
        tree = TreeTopology.from_undirected(edges, ["a", "b"])
        result = suppress_degree_two(tree)
        assert result.nodes == frozenset({"a", "b"})
        assert result.bandwidth("a", "b") == 1.0  # min along the chain

    def test_asymmetric_minimum_per_direction(self):
        tree = TreeTopology(
            {
                ("a", "x"): 4.0, ("x", "a"): 1.0,
                ("x", "b"): 2.0, ("b", "x"): 8.0,
            },
            ["a", "b"],
        )
        result = suppress_degree_two(tree)
        assert result.bandwidth("a", "b") == 2.0  # min(4, 2)
        assert result.bandwidth("b", "a") == 1.0  # min(8, 1)

    def test_keeps_degree_two_compute_node(self):
        tree = tree_with_internal_compute()
        result = suppress_degree_two(tree)
        assert "hub" in result.nodes

    def test_no_op_on_star(self, simple_star):
        result = suppress_degree_two(simple_star)
        assert result.nodes == simple_star.nodes


class TestNormalize:
    def test_combined(self):
        # chain: compute a - router x - compute hub - router y - compute b
        edges = {
            ("a", "x"): 1.0,
            ("x", "hub"): 2.0,
            ("hub", "y"): 4.0,
            ("y", "b"): 8.0,
        }
        tree = TreeTopology.from_undirected(edges, ["a", "hub", "b"])
        result = normalize(tree, virtual_bandwidth="sum")
        normalized = result.tree
        # All compute nodes are leaves, and no degree-2 nodes remain.
        for v in normalized.compute_nodes:
            assert normalized.degree(v) == 1
        for v in normalized.nodes:
            assert normalized.degree(v) != 2

    def test_idempotent_on_normalized_star(self, simple_star):
        result = normalize(simple_star)
        assert result.tree.nodes == simple_star.nodes
        assert result.relocated() == {}

    def test_two_level_core_of_degree_two_is_spliced(self, simple_two_level):
        # two_level([2, 3]) gives the core router degree 2, so the second
        # w.l.o.g. transform removes it and fuses the two uplinks.
        result = normalize(simple_two_level)
        assert "core" not in result.tree.nodes
        assert result.tree.bandwidth("w1", "w2") == 1.0

    def test_node_map_covers_all_computes(self):
        tree = tree_with_internal_compute()
        result = normalize(tree)
        assert set(result.node_map) == set(tree.compute_nodes)

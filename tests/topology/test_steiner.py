"""Unit tests for the path/Steiner oracle (multicast deduplication)."""

from repro.topology.builders import two_level
from repro.topology.steiner import PathOracle


class TestPathOracle:
    def setup_method(self):
        self.tree = two_level([2, 3])
        self.oracle = PathOracle(self.tree)

    def test_path_matches_tree(self):
        assert self.oracle.path_edges("v1", "v3") == self.tree.path_edges(
            "v1", "v3"
        )

    def test_path_to_self_empty(self):
        assert self.oracle.path_edges("v2", "v2") == ()

    def test_steiner_single_destination_is_path(self):
        assert set(self.oracle.steiner_edges("v1", ["v4"])) == set(
            self.tree.path_edges("v1", "v4")
        )

    def test_steiner_dedups_shared_prefix(self):
        # v1 -> {v3, v4}: the shared segment v1..w2 must appear once.
        edges = self.oracle.steiner_edges("v1", ["v3", "v4"])
        assert edges.count(("v1", "w1")) == 1
        assert edges.count(("w1", "core")) == 1
        assert ("w2", "v3") in edges
        assert ("w2", "v4") in edges
        assert len(edges) == 5

    def test_steiner_covers_union_of_paths(self):
        destinations = ["v2", "v3", "v5"]
        edges = set(self.oracle.steiner_edges("v1", destinations))
        union = set()
        for destination in destinations:
            union |= set(self.tree.path_edges("v1", destination))
        assert edges == union

    def test_steiner_to_self_only(self):
        assert self.oracle.steiner_edges("v1", ["v1"]) == ()

    def test_destination_order_irrelevant(self):
        forward = self.oracle.steiner_edges("v1", ["v3", "v4"])
        backward = self.oracle.steiner_edges("v1", ["v4", "v3"])
        assert set(forward) == set(backward)

    def test_memoisation_counts(self):
        oracle = PathOracle(self.tree)
        oracle.steiner_edges("v1", ["v3", "v4"])
        oracle.steiner_edges("v1", ["v4", "v3"])  # same key
        assert oracle.cache_info()["steiner"] == 1

    def test_edges_directed_away_from_source(self):
        for (u, v) in self.oracle.steiner_edges("v5", ["v1", "v2"]):
            # every edge points from the v5 side toward the destinations
            assert self.tree.path_nodes("v5", v).index(v) > self.tree.path_nodes(
                "v5", u
            ).index(u)

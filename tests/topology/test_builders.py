"""Unit tests for the topology builders."""

import math

import pytest

from repro.errors import TopologyError
from repro.topology.builders import (
    caterpillar,
    fat_tree,
    from_parent_map,
    mpc_star,
    random_tree,
    star,
    two_level,
)


class TestStar:
    def test_shape(self):
        tree = star(6)
        assert tree.num_compute_nodes == 6
        assert tree.routers == frozenset({"w"})
        assert tree.is_star()

    def test_scalar_bandwidth(self):
        tree = star(3, bandwidth=5.0)
        assert all(
            tree.bandwidth(v, "w") == 5.0 for v in tree.compute_nodes
        )

    def test_per_node_bandwidths(self):
        tree = star(3, bandwidth=[1.0, 2.0, 3.0])
        assert tree.bandwidth("v2", "w") == 2.0

    def test_bandwidth_map(self):
        tree = star(2, bandwidth={0: 1.0, 1: 7.0})
        assert tree.bandwidth("v2", "w") == 7.0

    def test_wrong_bandwidth_count_rejected(self):
        with pytest.raises(TopologyError):
            star(3, bandwidth=[1.0, 2.0])

    def test_zero_nodes_rejected(self):
        with pytest.raises(TopologyError):
            star(0)

    def test_symmetric(self):
        assert star(4).is_symmetric


class TestMpcStar:
    def test_asymmetric_bandwidths(self):
        tree = mpc_star(4)
        assert tree.bandwidth("v1", "o") == math.inf
        assert tree.bandwidth("o", "v1") == 1.0
        assert not tree.is_symmetric

    def test_receive_bandwidth_configurable(self):
        tree = mpc_star(2, receive_bandwidth=4.0)
        assert tree.bandwidth("o", "v2") == 4.0


class TestTwoLevel:
    def test_shape(self):
        tree = two_level([2, 3])
        assert tree.num_compute_nodes == 5
        assert tree.routers == frozenset({"w1", "w2", "core"})
        assert tree.degree("core") == 2

    def test_rack_membership(self):
        tree = two_level([2, 3])
        assert tree.path_nodes("v1", "v2") == ["v1", "w1", "v2"]
        assert "core" in tree.path_nodes("v1", "v3")

    def test_per_rack_bandwidths(self):
        tree = two_level(
            [1, 1], leaf_bandwidth=[4.0, 2.0], uplink_bandwidth=[1.0, 3.0]
        )
        assert tree.bandwidth("v1", "w1") == 4.0
        assert tree.bandwidth("v2", "w2") == 2.0
        assert tree.bandwidth("w2", "core") == 3.0

    def test_empty_rack_rejected(self):
        with pytest.raises(TopologyError):
            two_level([2, 0])


class TestFatTree:
    def test_leaf_count(self):
        tree = fat_tree(2, 3)
        assert tree.num_compute_nodes == 9

    def test_bandwidth_doubles_per_level(self):
        tree = fat_tree(2, 2, leaf_bandwidth=1.0, level_scale=2.0)
        assert tree.bandwidth("v1", tree.neighbors("v1")[0]) == 1.0
        assert tree.bandwidth("w2", "w1") == 2.0

    def test_depth_one_is_star(self):
        assert fat_tree(1, 4).is_star()

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            fat_tree(0, 2)
        with pytest.raises(TopologyError):
            fat_tree(2, 1)


class TestCaterpillar:
    def test_shape(self):
        tree = caterpillar(3, 2)
        assert tree.num_compute_nodes == 6
        assert tree.degree("w2") == 4  # two spine links + two leaves

    def test_spine_bandwidth(self):
        tree = caterpillar(2, 1, spine_bandwidth=7.0)
        assert tree.bandwidth("w1", "w2") == 7.0

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            caterpillar(0, 1)


class TestFromParentMap:
    def test_builds_chain(self):
        tree = from_parent_map(
            {"b": ("a", 1.0), "c": ("b", 2.0)}, ["a", "c"]
        )
        assert tree.path_nodes("a", "c") == ["a", "b", "c"]
        assert tree.bandwidth("c", "b") == 2.0


class TestRandomTree:
    def test_deterministic_in_seed(self):
        first = random_tree(10, seed=4)
        second = random_tree(10, seed=4)
        assert first.directed_edges == second.directed_edges

    def test_different_seeds_differ(self):
        assert (
            random_tree(10, seed=1).directed_edges
            != random_tree(10, seed=2).directed_edges
        )

    def test_leaves_are_compute(self):
        tree = random_tree(15, seed=0)
        assert tree.compute_nodes == tree.leaves()

    def test_bandwidths_from_choices(self):
        tree = random_tree(8, seed=3, bandwidth_choices=(2.0,))
        for (_, forward, backward) in tree.iter_links():
            assert forward == backward == 2.0

    def test_two_node_tree(self):
        tree = random_tree(2, seed=0)
        assert tree.num_nodes == 2

    def test_rejects_tiny(self):
        with pytest.raises(TopologyError):
            random_tree(1)

    @pytest.mark.parametrize("size", [3, 5, 9, 20])
    def test_always_valid_tree(self, size):
        for seed in range(5):
            tree = random_tree(size, seed=seed)
            assert tree.num_nodes == size

"""Unit tests for TreeTopology: validation, paths, edge sides, orders."""

import math

import pytest

from repro.errors import TopologyError
from repro.topology.builders import star, two_level
from repro.topology.tree import TreeTopology, node_sort_key


def chain(*bandwidths):
    """A path v0 - v1 - ... with the given link bandwidths."""
    edges = {
        (f"v{i}", f"v{i + 1}"): bw for i, bw in enumerate(bandwidths)
    }
    ends = ["v0", f"v{len(bandwidths)}"]
    return TreeTopology.from_undirected(edges, ends)


class TestConstruction:
    def test_minimal_two_node_tree(self):
        tree = TreeTopology.from_undirected({("a", "b"): 1.0}, ["a", "b"])
        assert tree.nodes == frozenset({"a", "b"})
        assert tree.compute_nodes == frozenset({"a", "b"})

    def test_single_node_tree(self):
        tree = TreeTopology({}, ["only"])
        assert tree.nodes == frozenset({"only"})
        assert tree.leaves() == frozenset({"only"})

    def test_rejects_cycle(self):
        edges = {("a", "b"): 1.0, ("b", "c"): 1.0, ("c", "a"): 1.0}
        with pytest.raises(TopologyError, match="tree"):
            TreeTopology.from_undirected(edges, ["a"])

    def test_rejects_disconnected(self):
        edges = {("a", "b"): 1.0, ("c", "d"): 1.0}
        with pytest.raises(TopologyError):
            TreeTopology.from_undirected(edges, ["a"])

    def test_rejects_missing_reverse_direction(self):
        with pytest.raises(TopologyError, match="full-duplex"):
            TreeTopology({("a", "b"): 1.0}, ["a", "b"])

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError, match="self-loop"):
            TreeTopology.from_undirected({("a", "a"): 1.0}, ["a"])

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(TopologyError, match="positive"):
            TreeTopology.from_undirected({("a", "b"): 0.0}, ["a"])

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(TopologyError, match="positive"):
            TreeTopology.from_undirected({("a", "b"): -2.0}, ["a"])

    def test_rejects_nan_bandwidth(self):
        with pytest.raises(TopologyError, match="positive"):
            TreeTopology.from_undirected({("a", "b"): float("nan")}, ["a"])

    def test_accepts_infinite_bandwidth(self):
        tree = TreeTopology.from_undirected({("a", "b"): math.inf}, ["a"])
        assert tree.bandwidth("a", "b") == math.inf

    def test_rejects_empty_compute_set(self):
        with pytest.raises(TopologyError, match="compute"):
            TreeTopology.from_undirected({("a", "b"): 1.0}, [])

    def test_rejects_unknown_compute_node(self):
        with pytest.raises(TopologyError):
            TreeTopology.from_undirected({("a", "b"): 1.0}, ["ghost"])

    def test_compute_only_membership_is_respected(self):
        tree = TreeTopology.from_undirected(
            {("a", "b"): 1.0, ("b", "c"): 1.0}, ["a", "c"]
        )
        assert tree.routers == frozenset({"b"})


class TestDerivation:
    def test_with_bandwidths_overrides_one_direction(self, simple_star):
        derived = simple_star.with_bandwidths({("v1", "w"): 9.0})
        assert derived.bandwidth("v1", "w") == 9.0
        assert derived.bandwidth("w", "v1") == 1.0
        assert simple_star.bandwidth("v1", "w") == 1.0  # original intact

    def test_with_bandwidths_rejects_unknown_edge(self, simple_star):
        with pytest.raises(TopologyError):
            simple_star.with_bandwidths({("v1", "v2"): 1.0})

    def test_with_compute_nodes(self, simple_star):
        derived = simple_star.with_compute_nodes(["v1", "v2"])
        assert derived.compute_nodes == frozenset({"v1", "v2"})


class TestSymmetry:
    def test_from_undirected_is_symmetric(self, simple_two_level):
        assert simple_two_level.is_symmetric

    def test_asymmetric_detected(self):
        tree = TreeTopology(
            {("a", "b"): 1.0, ("b", "a"): 2.0}, ["a", "b"]
        )
        assert not tree.is_symmetric
        with pytest.raises(TopologyError, match="symmetric"):
            tree.require_symmetric()

    def test_undirected_bandwidth_rejects_asymmetric_link(self):
        tree = TreeTopology({("a", "b"): 1.0, ("b", "a"): 2.0}, ["a", "b"])
        with pytest.raises(TopologyError, match="asymmetric"):
            tree.undirected_bandwidth(("a", "b"))


class TestStarDetection:
    def test_star_is_star(self):
        assert star(5).is_star()

    def test_two_level_is_not_star(self, simple_two_level):
        assert not simple_two_level.is_star()

    def test_star_center(self):
        assert star(5).star_center() == "w"

    def test_center_of_non_star_raises(self, simple_two_level):
        with pytest.raises(TopologyError, match="star"):
            simple_two_level.star_center()

    def test_two_node_tree_is_star(self):
        tree = TreeTopology.from_undirected({("a", "b"): 1.0}, ["a", "b"])
        assert tree.is_star()


class TestPaths:
    def test_path_to_self_is_trivial(self, simple_two_level):
        assert simple_two_level.path_nodes("v1", "v1") == ["v1"]
        assert simple_two_level.path_edges("v1", "v1") == ()

    def test_path_within_rack(self, simple_two_level):
        assert simple_two_level.path_nodes("v1", "v2") == ["v1", "w1", "v2"]

    def test_path_across_racks(self, simple_two_level):
        assert simple_two_level.path_nodes("v1", "v4") == [
            "v1", "w1", "core", "w2", "v4",
        ]

    def test_path_edges_direction(self, simple_two_level):
        edges = simple_two_level.path_edges("v1", "v3")
        assert edges == (("v1", "w1"), ("w1", "core"), ("core", "w2"), ("w2", "v3"))

    def test_path_is_reversible(self, simple_two_level):
        forward = simple_two_level.path_nodes("v2", "v5")
        backward = simple_two_level.path_nodes("v5", "v2")
        assert forward == list(reversed(backward))

    def test_unknown_node_raises(self, simple_two_level):
        with pytest.raises(TopologyError):
            simple_two_level.path_nodes("v1", "ghost")

    def test_path_on_chain(self):
        tree = chain(1.0, 2.0, 4.0)
        assert tree.path_nodes("v0", "v3") == ["v0", "v1", "v2", "v3"]


class TestEdgeSides:
    def test_sides_partition_the_nodes(self, simple_two_level):
        for edge in simple_two_level.undirected_edges():
            a_side, b_side = simple_two_level.edge_sides(edge)
            assert a_side | b_side == simple_two_level.nodes
            assert not (a_side & b_side)
            assert edge[0] in a_side
            assert edge[1] in b_side

    def test_compute_sides_of_uplink(self, simple_two_level):
        minus, plus = simple_two_level.compute_sides(("core", "w1"))
        rack_one = frozenset({"v1", "v2"})
        assert {minus, plus} == {
            rack_one,
            frozenset({"v3", "v4", "v5"}),
        }

    def test_side_weights(self, simple_two_level):
        weights = {"v1": 5, "v2": 5, "v3": 1, "v4": 1, "v5": 1}
        side_sums = simple_two_level.side_weights(weights)
        sums = side_sums[simple_two_level.canonical_edge("w1", "core")]
        assert sorted(sums) == [3, 10]

    def test_leaf_edge_isolates_leaf(self, simple_two_level):
        minus, plus = simple_two_level.compute_sides(
            simple_two_level.canonical_edge("v1", "w1")
        )
        assert frozenset({"v1"}) in (minus, plus)


class TestTraversalOrder:
    def test_covers_all_compute_nodes(self, simple_two_level):
        order = simple_two_level.left_to_right_compute_order()
        assert set(order) == set(simple_two_level.compute_nodes)
        assert len(order) == len(set(order))

    def test_subtrees_are_contiguous(self, simple_two_level):
        order = simple_two_level.left_to_right_compute_order()
        position = {v: i for i, v in enumerate(order)}
        for edge in simple_two_level.undirected_edges():
            minus, plus = simple_two_level.compute_sides(edge)
            for side in (minus, plus):
                positions = sorted(position[v] for v in side)
                if positions and positions == list(
                    range(positions[0], positions[-1] + 1)
                ):
                    break
            else:
                pytest.fail(f"neither side of {edge} contiguous")

    def test_rooting_changes_order(self, simple_two_level):
        default = simple_two_level.left_to_right_compute_order()
        rerooted = simple_two_level.left_to_right_compute_order(root="v3")
        assert set(default) == set(rerooted)
        assert rerooted[0] == "v3"
        assert default != rerooted

    def test_unknown_root_rejected(self, simple_two_level):
        with pytest.raises(TopologyError):
            simple_two_level.left_to_right_compute_order(root="ghost")


class TestMisc:
    def test_contains(self, simple_star):
        assert "v1" in simple_star
        assert "ghost" not in simple_star

    def test_repr_mentions_name(self, simple_star):
        assert "star(4)" in repr(simple_star)

    def test_iter_links_reports_both_directions(self):
        tree = TreeTopology({("a", "b"): 1.0, ("b", "a"): 3.0}, ["a", "b"])
        ((edge, forward, backward),) = list(tree.iter_links())
        assert {forward, backward} == {1.0, 3.0}

    def test_node_sort_key_distinguishes_types(self):
        assert node_sort_key(1) != node_sort_key("1")

    def test_undirected_edges_deterministic(self, simple_two_level):
        assert (
            simple_two_level.undirected_edges()
            == simple_two_level.undirected_edges()
        )

    def test_degree_and_leaves(self, simple_two_level):
        assert simple_two_level.degree("core") == 2
        assert simple_two_level.degree("w2") == 4
        assert simple_two_level.leaves() == frozenset(
            {"v1", "v2", "v3", "v4", "v5"}
        )

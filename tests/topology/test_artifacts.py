"""Tests for the shared topology-artifact layer (repro.topology.artifacts)."""

import threading

import numpy as np
import pytest

from repro.data.generators import random_distribution
from repro.errors import ProtocolError
from repro.obs.metrics import collecting
from repro.sim.cluster import Cluster
from repro.topology.artifacts import (
    ArtifactCache,
    TopologyArtifacts,
    ensure_artifact_cache,
    get_artifact_cache,
    resolve_artifacts,
    set_artifact_cache,
    topology_fingerprint,
    use_artifacts,
)
from repro.topology.builders import star, two_level


def _tree(name=None, uplink=2.0):
    return two_level([3, 3], uplink_bandwidth=uplink, name=name)


class TestFingerprint:
    def test_structurally_equal_trees_share_fingerprint(self):
        assert topology_fingerprint(_tree("a")) == topology_fingerprint(
            _tree("b")
        )

    def test_name_is_excluded(self):
        tree = _tree("first build")
        renamed = _tree("second build")
        assert tree.name != renamed.name
        assert topology_fingerprint(tree) == topology_fingerprint(renamed)

    def test_bandwidth_changes_fingerprint(self):
        assert topology_fingerprint(_tree(uplink=2.0)) != topology_fingerprint(
            _tree(uplink=4.0)
        )

    def test_different_structure_changes_fingerprint(self):
        assert topology_fingerprint(_tree()) != topology_fingerprint(
            star(6)
        )


class TestTopologyArtifacts:
    def test_compute_order_is_canonical(self):
        tree = _tree()
        artifacts = TopologyArtifacts(tree)
        cluster = Cluster(tree, artifacts=artifacts)
        assert artifacts.compute_order == cluster.compute_order

    def test_rank_lookup_matches_block_assignment(self):
        tree = _tree()
        artifacts = TopologyArtifacts(tree)
        routing = artifacts.oracle.routing_index
        for num_workers in (1, 2, 4):
            table = artifacts.rank_lookup(routing, num_workers)
            computes = artifacts.compute_order
            for index, node in enumerate(computes):
                expected = (index * num_workers) // len(computes)
                assert table[routing.index_of[node]] == expected
            # routers stay unassigned
            assert (table == -1).sum() == routing.num_nodes - len(computes)
            # cached per rank count: same array object on repeat
            assert artifacts.rank_lookup(routing, num_workers) is table


class TestArtifactCache:
    def test_identity_hit_skips_fingerprinting(self):
        cache = ArtifactCache()
        tree = _tree()
        first = cache.get(tree)
        assert cache.get(tree) is first
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_structural_hit_across_rebuilt_trees(self):
        cache = ArtifactCache()
        first = cache.get(_tree("a"))
        second = cache.get(_tree("b"))
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_bounds_entries(self):
        cache = ArtifactCache(max_entries=2)
        trees = [_tree(uplink=bw) for bw in (1.0, 2.0, 4.0)]
        for tree in trees:
            cache.get(tree)
        assert len(cache) == 2
        # the first topology was evicted: re-getting rebuilds (a miss)
        cache.get(_tree(uplink=1.0))
        assert cache.misses == 4

    def test_counters_recorded_on_installed_registry(self):
        cache = ArtifactCache()
        tree = _tree()
        with collecting() as registry:
            cache.get(tree)
            cache.get(tree)
        snap = registry.snapshot()
        counters = snap["counters"]
        assert counters["repro_artifact_cache_misses_total"][""] == 1
        assert counters["repro_artifact_cache_hits_total"][""] == 1


class TestInstallers:
    def test_default_is_none(self):
        assert get_artifact_cache() is None

    def test_use_artifacts_installs_and_restores(self):
        cache = ArtifactCache()
        with use_artifacts(cache):
            assert get_artifact_cache() is cache
        assert get_artifact_cache() is None

    def test_use_artifacts_restores_on_exception(self):
        cache = ArtifactCache()
        with pytest.raises(RuntimeError):
            with use_artifacts(cache):
                raise RuntimeError("boom")
        assert get_artifact_cache() is None

    def test_set_returns_previous(self):
        cache = ArtifactCache()
        assert set_artifact_cache(cache) is None
        assert set_artifact_cache(None) is cache

    def test_ensure_is_noop_inside_session_scope(self):
        cache = ArtifactCache()
        with use_artifacts(cache):
            with ensure_artifact_cache() as active:
                assert active is cache
            # the enclosing cache survives the inner scope
            assert get_artifact_cache() is cache

    def test_ensure_installs_one_shot_cache(self):
        with ensure_artifact_cache() as active:
            assert get_artifact_cache() is active
        assert get_artifact_cache() is None

    def test_installation_is_thread_local(self):
        cache = ArtifactCache()
        seen = {}

        def probe():
            seen["other"] = get_artifact_cache()

        with use_artifacts(cache):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["other"] is None

    def test_resolve_prefers_installed_cache(self):
        cache = ArtifactCache()
        tree = _tree()
        with use_artifacts(cache):
            assert resolve_artifacts(tree) is cache.get(tree)
        # cold path: a private build, not cached anywhere
        fresh = resolve_artifacts(tree)
        assert fresh is not cache.get(tree)


class TestClusterIntegration:
    def test_explicit_artifacts_are_used(self):
        tree = _tree()
        artifacts = TopologyArtifacts(tree)
        cluster = Cluster(tree, artifacts=artifacts)
        assert cluster.artifacts is artifacts
        assert cluster.oracle is artifacts.oracle

    def test_structurally_equal_artifacts_accepted(self):
        artifacts = TopologyArtifacts(_tree("a"))
        cluster = Cluster(_tree("b"), artifacts=artifacts)
        assert cluster.artifacts is artifacts

    def test_mismatched_artifacts_rejected(self):
        artifacts = TopologyArtifacts(_tree(uplink=2.0))
        with pytest.raises(ProtocolError):
            Cluster(_tree(uplink=4.0), artifacts=artifacts)

    def test_shared_artifacts_do_not_change_ledger(self):
        tree = _tree()
        dist = random_distribution(
            tree, r_size=300, s_size=300, policy="zipf", seed=3
        )
        from repro.core.intersection import tree_intersect

        fresh = tree_intersect(tree, dist, seed=1)
        cache = ArtifactCache()
        with use_artifacts(cache):
            warm_first = tree_intersect(tree, dist, seed=1)
            warm_again = tree_intersect(tree, dist, seed=1)
        assert warm_first.cost == fresh.cost
        assert warm_again.cost == fresh.cost
        assert set(warm_first.outputs) == set(fresh.outputs)
        for node, values in fresh.outputs.items():
            assert np.array_equal(warm_first.outputs[node], values)
            assert np.array_equal(warm_again.outputs[node], values)
        assert cache.hits >= 1

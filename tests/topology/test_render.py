"""Unit tests for ASCII topology rendering."""

import pytest

from repro.topology.builders import mpc_star, star, two_level
from repro.topology.render import ascii_tree


class TestAsciiTree:
    def test_mentions_every_node(self):
        tree = two_level([2, 2])
        art = ascii_tree(tree)
        for node in tree.nodes:
            assert str(node) in art

    def test_compute_nodes_bracketed(self):
        art = ascii_tree(star(2))
        assert "[v1]" in art
        assert "(w)" in art

    def test_bandwidth_annotations(self):
        art = ascii_tree(star(2, bandwidth=[1.5, 3.0]))
        assert "w=1.5" in art
        assert "w=3" in art

    def test_asymmetric_links_show_both_directions(self):
        art = ascii_tree(mpc_star(2))
        assert "inf" in art
        assert "/" in art

    def test_node_weights_annotation(self):
        art = ascii_tree(star(2), node_weights={"v1": 10})
        assert "N=10" in art

    def test_explicit_root(self):
        art = ascii_tree(two_level([1, 1]), root="w1")
        assert art.splitlines()[0].startswith("(w1)")

    def test_unknown_root_rejected(self):
        with pytest.raises(ValueError):
            ascii_tree(star(2), root="ghost")

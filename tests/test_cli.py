"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["--r-size", "200", "--s-size", "200", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1 reproduction" in out
        assert "set-intersection" in out

    def test_table1_verbose(self, capsys):
        assert (
            main(
                ["--r-size", "200", "--s-size", "200", "--verbose", "table1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "All runs" in out

    def test_compare(self, capsys):
        assert main(["--r-size", "400", "--s-size", "400", "compare"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "intersection" in out

    def test_topology(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "star-uniform(8)" in out
        assert "[v1]" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

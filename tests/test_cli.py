"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["--r-size", "200", "--s-size", "200", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1 reproduction" in out
        assert "set-intersection" in out

    def test_table1_verbose(self, capsys):
        assert (
            main(
                ["--r-size", "200", "--s-size", "200", "--verbose", "table1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "All runs" in out

    def test_compare(self, capsys):
        assert main(["--r-size", "400", "--s-size", "400", "compare"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "intersection" in out

    def test_topology(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "star-uniform(8)" in out
        assert "[v1]" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_bench_speed_small(self, capsys, tmp_path, monkeypatch):
        import json

        trajectory = tmp_path / "BENCH_SPEED.json"
        monkeypatch.setenv("BENCH_SPEED_JSON", str(trajectory))
        assert main(["--small", "bench", "speed"]) == 0
        out = capsys.readouterr().out
        assert "Bulk exchange vs legacy per-send path" in out
        assert "speedup" in out
        payload = json.loads(trajectory.read_text())
        assert payload["benchmark"] == "bench_speed"
        assert payload["runs"][0]["grid"] == "small"
        for case in payload["runs"][0]["cases"]:
            assert case["ledger_identical"] is True

    def test_bench_speed_json_output(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("BENCH_SPEED_JSON", str(tmp_path / "t.json"))
        assert main(["--small", "--json", "bench", "speed"]) == 0
        cases = json.loads(capsys.readouterr().out)
        assert {c["name"] for c in cases} == {
            "uniform-hash shuffle",
            "connected-components superstep shuffle",
            "intersection R-replication multicast",
            "end-to-end components supersteps",
        }

    def test_bench_unknown_subcommand_rejected(self, capsys):
        assert main(["bench", "psychic"]) == 2
        assert "unknown bench subcommand" in capsys.readouterr().err

    def test_table1_covers_relational_tasks(self, capsys):
        assert main(["--r-size", "150", "--s-size", "150", "table1"]) == 0
        out = capsys.readouterr().out
        assert "equijoin" in out
        assert "groupby-aggregate" in out

    def test_table1_covers_graph_tasks(self, capsys):
        assert main(["--r-size", "150", "--s-size", "150", "table1"]) == 0
        out = capsys.readouterr().out
        assert "connected-components" in out
        assert "triangle-count" in out

    def test_protocols_lists_graph_tasks(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "connected-components" in out
        assert "triangle-count" in out

    def test_protocols_json(self, capsys):
        import json

        assert main(["--json", "protocols"]) == 0
        payload = json.loads(capsys.readouterr().out)
        entries = {(row["task"], row["name"]) for row in payload}
        assert ("connected-components", "tree") in entries
        assert ("triangle-count", "optimized") in entries
        assert all("kind" in row and "description" in row for row in payload)

    def test_compare_json(self, capsys):
        import json

        assert (
            main(
                ["--r-size", "300", "--s-size", "300", "--json", "compare"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 6  # three tasks x (aware, baseline)
        assert {row["task"] for row in payload} == {
            "set-intersection",
            "cartesian-product",
            "sorting",
        }
        assert all("cost" in row and "ratio" in row for row in payload)


class TestServeCommand:
    def test_serve_table(self, capsys):
        assert main(["--racks", "3", "--queries", "24", "serve"]) == 0
        out = capsys.readouterr().out
        assert "Warm session serving" in out
        assert "fat-tree(3x3)" in out
        assert "artifact hits/misses" in out

    def test_serve_json(self, capsys):
        import json

        assert (
            main(["--racks", "3", "--queries", "24", "--json", "serve"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["queries"] == 24
        assert payload["task_queries"] == 18
        assert payload["plan_queries"] == 6
        assert payload["session"]["runs"] == 18
        assert payload["session"]["artifact_cache"]["misses"] == 1
        assert payload["total_cost"] > 0

    def test_serve_process_backend(self, capsys):
        assert (
            main(
                [
                    "--racks",
                    "3",
                    "--queries",
                    "8",
                    "--backend",
                    "process",
                    "--num-workers",
                    "2",
                    "--json",
                    "serve",
                ]
            )
            == 0
        )
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["session"]["backend"] == "process"

    def test_bench_serve_small(self, capsys, tmp_path, monkeypatch):
        import json

        trajectory = tmp_path / "BENCH_SERVE.json"
        monkeypatch.setenv("BENCH_SERVE_JSON", str(trajectory))
        assert main(["--small", "bench", "serve"]) == 0
        out = capsys.readouterr().out
        assert "Warm session vs cold one-shot engine" in out
        assert "speedup" in out
        payload = json.loads(trajectory.read_text())
        assert payload["benchmark"] == "bench_serve"
        assert payload["runs"][0]["grid"] == "small"
        for case in payload["runs"][0]["cases"]:
            assert case["identical"] is True
            assert case["speedup"] >= case["min_speedup"]


class TestGraphsCommand:
    def test_graphs_table(self, capsys):
        assert main(["--edges", "200", "graphs"]) == 0
        out = capsys.readouterr().out
        assert "Graph workloads" in out
        assert "cc speedup" in out
        assert "star-hetero(8)" in out

    def test_graphs_json(self, capsys):
        import json

        assert main(["--edges", "200", "--json", "graphs"]) == 0
        payload = json.loads(capsys.readouterr().out)
        tasks = {row["task"] for row in payload}
        assert tasks == {"connected-components", "triangle-count"}
        assert all("supersteps" in row for row in payload)


class TestPlanCommand:
    def test_plan_explain_runs_chain_on_suite(self, capsys):
        assert main(["--rows", "300", "--explain", "plan"]) == 0
        out = capsys.readouterr().out
        assert "optimized plan" in out  # --explain printed physical plans
        assert "Query planner: 3-relation chain join" in out
        assert "speedup vs gather" in out

    def test_optimized_beats_gather_on_every_topology(self, capsys):
        # The headline acceptance claim: across the standard suite the
        # optimized plan's measured cost never exceeds gather-everything.
        assert main(["--rows", "400", "plan"]) == 0
        out = capsys.readouterr().out
        table_lines = [
            line
            for line in out.splitlines()
            if line and ("star" in line or "tree" in line or "level" in line
                         or "caterpillar" in line)
            and "x" in line.split()[-1]
        ]
        assert len(table_lines) >= 6
        for line in table_lines:
            speedup = float(line.split()[-1].rstrip("x"))
            assert speedup >= 1.0, line

    def test_plan_relations_flag(self, capsys):
        assert main(["--rows", "200", "--relations", "4", "plan"]) == 0
        out = capsys.readouterr().out
        assert "4-relation chain join" in out

"""Unit tests for the cluster simulator: storage, rounds, routing."""

import numpy as np
import pytest

from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.sim.cluster import Cluster
from repro.topology.builders import star, two_level


@pytest.fixture
def cluster():
    return Cluster(two_level([2, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0))


class TestStorage:
    def test_put_and_local(self, cluster):
        cluster.put("v1", "R", [1, 2, 3])
        assert cluster.local("v1", "R").tolist() == [1, 2, 3]

    def test_put_appends(self, cluster):
        cluster.put("v1", "R", [1])
        cluster.put("v1", "R", [2])
        assert cluster.local("v1", "R").tolist() == [1, 2]

    def test_put_on_router_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="compute"):
            cluster.put("core", "R", [1])

    def test_take_removes(self, cluster):
        cluster.put("v1", "R", [1, 2])
        taken = cluster.take("v1", "R")
        assert taken.tolist() == [1, 2]
        assert len(cluster.local("v1", "R")) == 0

    def test_local_size(self, cluster):
        cluster.put("v1", "R", [1, 2])
        cluster.put("v1", "S", [3])
        assert cluster.local_size("v1", "R") == 2
        assert cluster.local_size("v1") == 3

    def test_tags_at(self, cluster):
        cluster.put("v2", "X", [1])
        assert cluster.tags_at("v2") == frozenset({"X"})

    def test_load_distribution(self):
        tree = star(3)
        dist = Distribution({"v1": {"R": [1, 2]}, "v2": {"R": [3]}})
        cluster = Cluster(tree, dist)
        assert cluster.local("v1", "R").tolist() == [1, 2]
        assert cluster.local_size("v3") == 0


class TestRounds:
    def test_send_delivers_and_charges_path(self, cluster):
        cluster.put("v1", "R", [5, 6, 7])
        with cluster.round() as ctx:
            ctx.send("v1", "v3", cluster.local("v1", "R"), tag="recv")
        assert cluster.local("v3", "recv").tolist() == [5, 6, 7]
        loads = cluster.ledger.round_loads(0)
        assert loads[("v1", "w1")] == 3
        assert loads[("w1", "core")] == 3
        assert loads[("core", "w2")] == 3
        assert loads[("w2", "v3")] == 3

    def test_round_cost_uses_bottleneck(self, cluster):
        # leaf links have bandwidth 2, uplinks bandwidth 1.
        cluster.put("v1", "R", np.arange(4))
        with cluster.round() as ctx:
            ctx.send("v1", "v3", np.arange(4), tag="recv")
        assert cluster.ledger.round_cost(0) == 4.0  # 4 elements / bw 1

    def test_multicast_charges_steiner_edges_once(self, cluster):
        with cluster.round() as ctx:
            ctx.multicast("v1", ["v3", "v4", "v5"], np.arange(10), tag="m")
        loads = cluster.ledger.round_loads(0)
        assert loads[("w1", "core")] == 10  # shared prefix charged once
        assert loads[("w2", "v3")] == 10
        assert loads[("w2", "v4")] == 10

    def test_multicast_delivers_copies(self, cluster):
        with cluster.round() as ctx:
            ctx.multicast("v1", ["v3", "v4"], [1, 2], tag="m")
        assert cluster.local("v3", "m").tolist() == [1, 2]
        assert cluster.local("v4", "m").tolist() == [1, 2]

    def test_self_send_costs_nothing(self, cluster):
        with cluster.round() as ctx:
            ctx.send("v1", "v1", [1, 2, 3], tag="self")
        assert cluster.ledger.round_cost(0) == 0.0
        assert cluster.local("v1", "self").tolist() == [1, 2, 3]

    def test_empty_payload_is_free(self, cluster):
        with cluster.round() as ctx:
            ctx.send("v1", "v3", [], tag="x")
        assert cluster.ledger.round_loads(0) == {}
        assert len(cluster.local("v3", "x")) == 0

    def test_router_destination_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="router"):
            with cluster.round() as ctx:
                ctx.send("v1", "core", [1], tag="x")

    def test_unknown_node_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="unknown"):
            with cluster.round() as ctx:
                ctx.send("v1", "ghost", [1], tag="x")

    def test_empty_destination_set_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="destination"):
            with cluster.round() as ctx:
                ctx.multicast("v1", [], [1], tag="x")

    def test_two_dimensional_payload_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="one-dimensional"):
            with cluster.round() as ctx:
                ctx.send("v1", "v2", [[1, 2]], tag="x")

    def test_nested_rounds_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="in progress"):
            with cluster.round():
                with cluster.round():
                    pass

    def test_deliveries_wait_for_round_end(self, cluster):
        with cluster.round() as ctx:
            ctx.send("v1", "v2", [1], tag="late")
            assert len(cluster.local("v2", "late")) == 0
        assert cluster.local("v2", "late").tolist() == [1]

    def test_failed_round_not_accounted(self, cluster):
        with pytest.raises(RuntimeError):
            with cluster.round() as ctx:
                ctx.send("v1", "v2", [1], tag="x")
                raise RuntimeError("protocol bug")
        assert cluster.ledger.num_rounds == 0
        assert len(cluster.local("v2", "x")) == 0

    def test_scatter_convenience(self, cluster):
        with cluster.round() as ctx:
            ctx.scatter("v1", [("v2", [1]), ("v3", [2, 3])], tag="s")
        assert cluster.local("v2", "s").tolist() == [1]
        assert cluster.local("v3", "s").tolist() == [2, 3]

    def test_received_elements_excludes_self(self, cluster):
        with cluster.round() as ctx:
            ctx.send("v1", "v1", [1, 2], tag="a")
            ctx.send("v1", "v2", [3], tag="a")
        assert cluster.received_elements("v1") == 0
        assert cluster.received_elements("v2") == 1

    def test_rounds_executed(self, cluster):
        with cluster.round():
            pass
        with cluster.round():
            pass
        assert cluster.rounds_executed == 2

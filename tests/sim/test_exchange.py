"""Tests for the bulk exchange primitive and its accounting equivalence.

The contract under test: one :meth:`RoundContext.exchange` call is
observably identical to the equivalent sequence of per-destination
:meth:`RoundContext.send` calls — same per-node storage (content *and*
element order), same ``received_elements``, same per-edge ledger loads —
on any topology, placement, and target assignment.  The vectorized
``bulk`` mode and the legacy ``per-send`` mode are compared end to end.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.sim.cluster import Cluster, use_exchange_mode
from repro.topology.builders import star, two_level
from repro.topology.steiner import RoutingIndex

from tests.strategies import tree_topologies


@pytest.fixture
def cluster():
    return Cluster(two_level([2, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0))


class TestExchangeBasics:
    def test_delivers_groups_in_element_order(self, cluster):
        computes = cluster.compute_order  # (v1, v2, v3, v4, v5)
        with cluster.round() as ctx:
            ctx.exchange(
                "v1", [1, 0, 1, 2, 1], [10, 20, 30, 40, 50], tag="x"
            )
        assert cluster.local(computes[0], "x").tolist() == [20]
        assert cluster.local(computes[1], "x").tolist() == [10, 30, 50]
        assert cluster.local(computes[2], "x").tolist() == [40]

    def test_charges_paths_like_sends(self):
        a = Cluster(two_level([2, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0))
        b = Cluster(two_level([2, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0))
        with a.round() as ctx:
            ctx.exchange("v1", [2, 2, 4], [7, 8, 9], tag="x")
        with b.round() as ctx:
            ctx.send("v1", b.compute_order[2], [7, 8], tag="x")
            ctx.send("v1", b.compute_order[4], [9], tag="x")
        assert a.ledger.round_loads(0) == b.ledger.round_loads(0)

    def test_custom_node_list(self, cluster):
        with cluster.round() as ctx:
            ctx.exchange(
                "v1", [0, 1, 0], [1, 2, 3], tag="x", nodes=["v5", "v3"]
            )
        assert cluster.local("v5", "x").tolist() == [1, 3]
        assert cluster.local("v3", "x").tolist() == [2]

    def test_self_targets_cost_nothing(self, cluster):
        index = cluster.compute_order.index("v1")
        with cluster.round() as ctx:
            ctx.exchange("v1", [index, index], [1, 2], tag="x")
        assert cluster.local("v1", "x").tolist() == [1, 2]
        assert cluster.ledger.round_loads(0) == {}
        assert cluster.received_elements("v1") == 0

    def test_empty_payload_is_free(self, cluster):
        with cluster.round() as ctx:
            ctx.exchange("v1", [], [], tag="x")
        assert cluster.ledger.round_loads(0) == {}

    def test_aliased_nodes_collapse_to_one_delivery(self):
        """An explicit node list aliasing one node under two indices
        delivers once, in original element order, in BOTH modes (the
        duplicate-alias regression: per-send used to reorder to
        [10, 12, 11, 13])."""
        results = {}
        for mode in ("bulk", "per-send"):
            cluster = Cluster(
                two_level([2, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0),
                exchange_mode=mode,
            )
            with cluster.round() as ctx:
                ctx.exchange(
                    "v1",
                    [0, 1, 0, 1],
                    [10, 11, 12, 13],
                    tag="x",
                    nodes=["v3", "v3"],
                )
            results[mode] = (
                cluster.local("v3", "x").tolist(),
                cluster.ledger.round_loads(0),
                cluster.received_elements("v3"),
            )
        assert results["bulk"][0] == [10, 11, 12, 13]
        assert results["bulk"] == results["per-send"]

    def test_send_and_exchange_interleave_in_call_order(self):
        """Mixed send/exchange traffic to one (dst, tag) lands in
        registration order in both modes (code-review regression)."""
        results = {}
        for mode in ("bulk", "per-send"):
            cluster = Cluster(
                two_level([2, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0),
                exchange_mode=mode,
            )
            dst = cluster.compute_order[1]
            with cluster.round() as ctx:
                ctx.send("v1", dst, [100, 101], tag="x")
                ctx.exchange("v3", [1, 1], [200, 201], tag="x")
                ctx.send("v4", dst, [300], tag="x")
            results[mode] = cluster.local(dst, "x").tolist()
        assert results["bulk"] == [100, 101, 200, 201, 300]
        assert results["bulk"] == results["per-send"]

    def test_multiple_tags_one_round(self, cluster):
        with cluster.round() as ctx:
            ctx.exchange("v1", [1, 2], [1, 2], tag="a")
            ctx.exchange("v2", [1, 2], [3, 4], tag="b")
        assert cluster.local(cluster.compute_order[1], "a").tolist() == [1]
        assert cluster.local(cluster.compute_order[1], "b").tolist() == [3]


class TestExchangeValidation:
    def test_router_source_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="router"):
            with cluster.round() as ctx:
                ctx.exchange("core", [0], [1], tag="x")

    def test_unknown_source_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="unknown"):
            with cluster.round() as ctx:
                ctx.exchange("ghost", [0], [1], tag="x")

    def test_router_in_node_list_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="router"):
            with cluster.round() as ctx:
                ctx.exchange("v1", [0], [1], tag="x", nodes=["core"])

    def test_unused_router_in_node_list_tolerated(self, cluster):
        # validation covers the destinations actually targeted, like
        # the equivalent send sequence would
        with cluster.round() as ctx:
            ctx.exchange("v1", [0, 0], [1, 2], tag="x", nodes=["v2", "core"])
        assert cluster.local("v2", "x").tolist() == [1, 2]

    def test_length_mismatch_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="one target index"):
            with cluster.round() as ctx:
                ctx.exchange("v1", [0, 1], [1], tag="x")

    def test_out_of_range_target_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="target indices"):
            with cluster.round() as ctx:
                ctx.exchange("v1", [99], [1], tag="x")

    def test_negative_target_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="target indices"):
            with cluster.round() as ctx:
                ctx.exchange("v1", [-1], [1], tag="x")

    def test_float_targets_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="integer"):
            with cluster.round() as ctx:
                ctx.exchange("v1", [0.5], [1], tag="x")

    def test_two_dimensional_targets_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="one-dimensional"):
            with cluster.round() as ctx:
                ctx.exchange("v1", [[0]], [[1]], tag="x")

    def test_zero_length_float_array_targets_rejected(self, cluster):
        """The empty-payload early return must not skip dtype checks:
        an explicit float array is a caller bug whether or not it
        carries elements (empty-payload validation regression)."""
        with pytest.raises(ProtocolError, match="integer"):
            with cluster.round() as ctx:
                ctx.exchange("v1", np.array([], dtype=np.float64), [], tag="x")

    def test_zero_length_integer_array_targets_accepted(self, cluster):
        with cluster.round() as ctx:
            ctx.exchange("v1", np.empty(0, dtype=np.int64), [], tag="x")
        assert cluster.ledger.round_loads(0) == {}

    def test_zero_length_two_dimensional_targets_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="one-dimensional"):
            with cluster.round() as ctx:
                ctx.exchange(
                    "v1", np.empty((0, 2), dtype=np.int64), [], tag="x"
                )


class TestRouterSourceRegression:
    """Data can never reside at a router, so no transfer may start there."""

    def test_send_from_router_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="router"):
            with cluster.round() as ctx:
                ctx.send("core", "v1", [1], tag="x")

    def test_multicast_from_router_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="router"):
            with cluster.round() as ctx:
                ctx.multicast("core", ["v1", "v2"], [1], tag="x")

    def test_scatter_from_router_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="router"):
            with cluster.round() as ctx:
                ctx.scatter("w1", [("v1", [1])], tag="x")

    def test_put_on_router_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="compute"):
            cluster.put("core", "R", [1])

    def test_load_with_router_data_rejected(self, cluster):
        from repro.errors import DistributionError

        with pytest.raises(DistributionError, match="non-compute"):
            cluster.load(Distribution({"core": {"R": [1]}}))


def _random_exchange_plan(draw, tree):
    """A registration-ordered mix of exchange and send ops per node.

    Roughly a third of the exchange entries target an explicit node
    list drawn *with replacement* from the compute nodes, so one node
    may be aliased under several target indices — the duplicate-alias
    regression the equivalence property must cover.
    """
    computes = sorted(tree.compute_nodes, key=str)
    plan = []
    for node in computes:
        for _ in range(draw(st.integers(1, 2))):
            if draw(st.integers(0, 2)) == 0:
                node_list = [
                    draw(st.sampled_from(computes))
                    for _ in range(draw(st.integers(1, 6)))
                ]
            else:
                node_list = list(computes)
            count = draw(st.integers(0, 12))
            targets = [
                draw(st.integers(0, len(node_list) - 1)) for _ in range(count)
            ]
            values = [draw(st.integers(-50, 50)) for _ in range(count)]
            tag = draw(st.sampled_from(["recv", "other"]))
            kind = draw(st.sampled_from(["exchange", "send"]))
            if kind == "send":
                # one direct send, interleaved with the exchanges, to
                # pin down ordering when both hit the same (dst, tag)
                targets = targets[:1] * len(values)
            plan.append((kind, node, node_list, targets, values, tag))
    return computes, plan


@st.composite
def exchange_instances(draw):
    tree = draw(tree_topologies(min_nodes=3, max_nodes=10))
    computes, plan = _random_exchange_plan(draw, tree)
    return tree, computes, plan


def _snapshot(cluster, computes, tags=("recv", "other")):
    storage = {
        (v, tag): cluster.local(v, tag).tolist()
        for v in computes
        for tag in tags
    }
    received = {v: cluster.received_elements(v) for v in computes}
    loads = [
        cluster.ledger.round_loads(i)
        for i in range(cluster.ledger.num_rounds)
    ]
    return storage, received, loads


class TestExchangeEquivalenceProperty:
    @given(exchange_instances())
    @settings(max_examples=60, deadline=None)
    def test_exchange_matches_per_destination_sends(self, instance):
        """The issue's contract: identical storage, received counts, and
        per-edge loads between one exchange call and the equivalent
        send sequence, on random topologies."""
        tree, computes, plan = instance

        def replay(cluster, expand_exchange):
            with cluster.round() as ctx:
                for kind, node, node_list, targets, values, tag in plan:
                    if kind == "send" and targets:
                        ctx.send(node, node_list[targets[0]], values, tag=tag)
                    elif kind == "send":
                        pass  # empty send plan entry
                    elif expand_exchange:
                        # the contract: per destination *node* (aliased
                        # indices collapse), one send carrying that
                        # node's elements in original order
                        grouped: dict = {}
                        for index, value in zip(targets, values):
                            grouped.setdefault(node_list[index], []).append(
                                value
                            )
                        for dst, chunk in grouped.items():
                            ctx.send(node, dst, chunk, tag=tag)
                    else:
                        ctx.exchange(
                            node, targets, values, tag=tag, nodes=node_list
                        )

        bulk = Cluster(tree, exchange_mode="bulk")
        replay(bulk, expand_exchange=False)

        sends = Cluster(tree, exchange_mode="bulk")
        replay(sends, expand_exchange=True)

        legacy = Cluster(tree, exchange_mode="per-send")
        replay(legacy, expand_exchange=False)

        reference = _snapshot(sends, computes)
        assert _snapshot(bulk, computes) == reference
        assert _snapshot(legacy, computes) == reference

    @given(exchange_instances())
    @settings(max_examples=40, deadline=None)
    def test_routing_index_matches_path_walks(self, instance):
        """The vectorized tree-flow charger equals per-pair path walks."""
        tree, computes, plan = instance
        routing = RoutingIndex(tree)
        pairs = [
            (src, node_list[t])
            for _kind, src, node_list, targets, _values, _tag in plan
            for t in targets
        ]
        if not pairs:
            return
        expected: dict = {}
        for src, dst in pairs:
            for edge in tree.path_edges(src, dst):
                expected[edge] = expected.get(edge, 0) + 1
        src_ids = np.asarray([routing.index_of[s] for s, _ in pairs])
        dst_ids = np.asarray([routing.index_of[d] for _, d in pairs])
        counts = np.ones(len(pairs), dtype=np.int64)
        assert routing.unicast_loads(src_ids, dst_ids, counts) == expected


class TestExchangeModeSwitch:
    def test_use_exchange_mode_scopes_default(self):
        tree = star(3)
        with use_exchange_mode("per-send"):
            assert Cluster(tree).exchange_mode == "per-send"
        assert Cluster(tree).exchange_mode == "bulk"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ProtocolError, match="exchange mode"):
            Cluster(star(3), exchange_mode="psychic")
        with pytest.raises(ProtocolError, match="exchange mode"):
            with use_exchange_mode("psychic"):
                pass  # pragma: no cover

"""Tests for the batched multicast primitive and its accounting.

The contract under test: one :meth:`RoundContext.exchange_multicast`
call is observably identical to the equivalent per-group
:meth:`RoundContext.multicast` loop — same per-node storage (content
*and* element order), same ``received_elements``, same per-edge ledger
loads — on any topology and any family of Steiner destination sets.
The vectorized ``bulk`` mode, the looped expansion, and the legacy
``per-send`` mode are compared end to end, and the vectorized
:meth:`RoutingIndex.multicast_loads` charger is checked against the
memoised per-group Steiner-edge walks.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.suites import standard_topologies
from repro.errors import ProtocolError
from repro.sim.cluster import Cluster
from repro.topology.builders import two_level
from repro.topology.steiner import PathOracle, RoutingIndex
from repro.topology.tree import node_sort_key

from tests.strategies import tree_topologies


@pytest.fixture
def cluster():
    return Cluster(two_level([2, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0))


def _snapshot(cluster, tags=("recv", "other")):
    computes = cluster.compute_order
    storage = {
        (v, tag): cluster.local(v, tag).tolist()
        for v in computes
        for tag in tags
    }
    received = {v: cluster.received_elements(v) for v in computes}
    loads = [
        cluster.ledger.round_loads(i)
        for i in range(cluster.ledger.num_rounds)
    ]
    return storage, received, loads


class TestExchangeMulticastBasics:
    def test_delivers_to_every_member_in_element_order(self, cluster):
        with cluster.round() as ctx:
            ctx.exchange_multicast(
                "v1",
                [0, 1, 0],
                [{"v3", "v4"}, {"v5"}],
                [1, 2, 3],
                tag="x",
            )
        assert cluster.local("v3", "x").tolist() == [1, 3]
        assert cluster.local("v4", "x").tolist() == [1, 3]
        assert cluster.local("v5", "x").tolist() == [2]

    def test_charges_steiner_sets_like_looped_multicast(self):
        a = Cluster(two_level([2, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0))
        b = Cluster(two_level([2, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0))
        sets = [frozenset({"v3", "v4"}), frozenset({"v2", "v5"})]
        group_ids = np.array([0, 1, 0, 0, 1])
        values = np.array([1, 2, 3, 4, 5])
        with a.round() as ctx:
            ctx.exchange_multicast("v1", group_ids, sets, values, tag="x")
        with b.round() as ctx:
            for index in np.unique(group_ids):
                ctx.multicast(
                    "v1", sets[index], values[group_ids == index], tag="x"
                )
        assert a.ledger.round_loads(0) == b.ledger.round_loads(0)
        for v in a.compute_order:
            assert a.local(v, "x").tolist() == b.local(v, "x").tolist()
            assert a.received_elements(v) == b.received_elements(v)

    def test_self_only_destination_set_is_stored_free(self):
        """A destination set containing only the source stores a copy
        at zero link cost — in multicast and exchange_multicast alike."""
        for batched in (False, True):
            cluster = Cluster(
                two_level([2, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0)
            )
            with cluster.round() as ctx:
                if batched:
                    ctx.exchange_multicast(
                        "v1", [0, 0], [{"v1"}], [7, 8], tag="x"
                    )
                else:
                    ctx.multicast("v1", {"v1"}, [7, 8], tag="x")
            assert cluster.local("v1", "x").tolist() == [7, 8]
            assert cluster.ledger.round_loads(0) == {}
            assert cluster.received_elements("v1") == 0

    def test_source_inside_larger_destination_set(self, cluster):
        with cluster.round() as ctx:
            ctx.exchange_multicast(
                "v1", [0, 0], [{"v1", "v2"}], [7, 8], tag="x"
            )
        assert cluster.local("v1", "x").tolist() == [7, 8]
        assert cluster.local("v2", "x").tolist() == [7, 8]
        assert cluster.received_elements("v1") == 0
        assert cluster.received_elements("v2") == 2
        # one copy crosses v1 -> core -> v2, charged once per link
        assert all(
            count == 2 for count in cluster.ledger.round_loads(0).values()
        )

    def test_interleaves_with_sends_and_multicasts_across_modes(self):
        """Mixed traffic on one (dst, tag) lands in registration order
        (unicasts first, then the multicast stream) in both modes."""
        results = {}
        for mode in ("bulk", "per-send"):
            cluster = Cluster(
                two_level([2, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0),
                exchange_mode=mode,
            )
            with cluster.round() as ctx:
                ctx.multicast("v2", {"v4", "v5"}, [100], tag="x")
                ctx.exchange_multicast(
                    "v1", [1, 0, 1], [{"v4"}, {"v4", "v5"}], [1, 2, 3], tag="x"
                )
                ctx.send("v3", "v4", [200], tag="x")
            results[mode] = _snapshot(cluster, tags=("x",))
        assert results["bulk"] == results["per-send"]
        storage = results["bulk"][0]
        assert storage[("v4", "x")] == [200, 100, 2, 1, 3]

    def test_empty_payload_is_free(self, cluster):
        with cluster.round() as ctx:
            ctx.exchange_multicast("v1", [], [{"v2"}], [], tag="x")
        assert cluster.ledger.round_loads(0) == {}


class TestExchangeMulticastValidation:
    def test_router_source_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="router"):
            with cluster.round() as ctx:
                ctx.exchange_multicast("core", [0], [{"v1"}], [1], tag="x")

    def test_router_in_destination_set_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="router"):
            with cluster.round() as ctx:
                ctx.exchange_multicast(
                    "v1", [0], [{"v2", "core"}], [1], tag="x"
                )

    def test_router_in_unused_destination_set_tolerated(self, cluster):
        # validation covers the destination sets actually referenced,
        # like the equivalent multicast loop would
        with cluster.round() as ctx:
            ctx.exchange_multicast(
                "v1", [0, 0], [{"v2"}, {"core"}], [1, 2], tag="x"
            )
        assert cluster.local("v2", "x").tolist() == [1, 2]

    def test_empty_used_destination_set_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="at least one destination"):
            with cluster.round() as ctx:
                ctx.exchange_multicast(
                    "v1", [0, 1], [{"v2"}, frozenset()], [1, 2], tag="x"
                )

    def test_empty_unused_destination_set_tolerated(self, cluster):
        with cluster.round() as ctx:
            ctx.exchange_multicast(
                "v1", [0, 0], [{"v2"}, frozenset()], [1, 2], tag="x"
            )
        assert cluster.local("v2", "x").tolist() == [1, 2]

    def test_length_mismatch_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="one group id"):
            with cluster.round() as ctx:
                ctx.exchange_multicast("v1", [0, 0], [{"v2"}], [1], tag="x")

    def test_out_of_range_group_id_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="group ids span"):
            with cluster.round() as ctx:
                ctx.exchange_multicast("v1", [1], [{"v2"}], [1], tag="x")

    def test_negative_group_id_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="group ids span"):
            with cluster.round() as ctx:
                ctx.exchange_multicast("v1", [-1], [{"v2"}], [1], tag="x")

    def test_float_group_ids_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="integer"):
            with cluster.round() as ctx:
                ctx.exchange_multicast("v1", [0.5], [{"v2"}], [1], tag="x")

    def test_zero_length_float_array_group_ids_rejected(self, cluster):
        """The empty-payload early return must not skip dtype checks
        (empty-payload validation regression)."""
        with pytest.raises(ProtocolError, match="integer"):
            with cluster.round() as ctx:
                ctx.exchange_multicast(
                    "v1", np.array([], dtype=np.float64), [{"v2"}], [], tag="x"
                )

    def test_two_dimensional_group_ids_rejected(self, cluster):
        with pytest.raises(ProtocolError, match="one-dimensional"):
            with cluster.round() as ctx:
                ctx.exchange_multicast("v1", [[0]], [{"v2"}], [[1]], tag="x")


class TestStandardTopologyEquivalence:
    """The satellite contract: exchange_multicast equals a looped
    ctx.multicast on every standard benchmark topology."""

    @pytest.mark.parametrize(
        "tree",
        standard_topologies(),
        ids=lambda tree: tree.name,
    )
    def test_equivalent_to_looped_multicast(self, tree):
        computes = sorted(tree.compute_nodes, key=node_sort_key)
        # the intersection replication shape: {hashed owner} | Vbeta
        beta = frozenset(computes[:: max(1, len(computes) // 3)])
        sets = [beta | {v} for v in computes]
        rng = np.random.default_rng(7)
        plan = [
            (
                node,
                rng.integers(0, len(sets), size=5 + i),
                rng.integers(-50, 50, size=5 + i),
            )
            for i, node in enumerate(computes)
        ]

        def replay(cluster, expand):
            with cluster.round() as ctx:
                for node, group_ids, values in plan:
                    if expand:
                        for index in np.unique(group_ids):
                            ctx.multicast(
                                node,
                                sets[index],
                                values[group_ids == index],
                                tag="recv",
                            )
                    else:
                        ctx.exchange_multicast(
                            node, group_ids, sets, values, tag="recv"
                        )

        bulk = Cluster(tree, exchange_mode="bulk")
        replay(bulk, expand=False)
        looped = Cluster(tree, exchange_mode="bulk")
        replay(looped, expand=True)
        legacy = Cluster(tree, exchange_mode="per-send")
        replay(legacy, expand=False)

        reference = _snapshot(looped, tags=("recv",))
        assert _snapshot(bulk, tags=("recv",)) == reference
        assert _snapshot(legacy, tags=("recv",)) == reference


def _random_multicast_plan(draw, tree):
    """A registration-ordered mix of batched/plain multicasts and sends."""
    computes = sorted(tree.compute_nodes, key=str)
    plan = []
    for node in computes:
        for _ in range(draw(st.integers(1, 2))):
            tag = draw(st.sampled_from(["recv", "other"]))
            kind = draw(
                st.sampled_from(["exchange_multicast", "multicast", "send"])
            )
            if kind == "exchange_multicast":
                sets = [
                    frozenset(
                        draw(
                            st.sets(
                                st.sampled_from(computes),
                                min_size=1,
                                max_size=min(4, len(computes)),
                            )
                        )
                    )
                    for _ in range(draw(st.integers(1, 3)))
                ]
                count = draw(st.integers(0, 10))
                group_ids = [
                    draw(st.integers(0, len(sets) - 1)) for _ in range(count)
                ]
                values = [draw(st.integers(-50, 50)) for _ in range(count)]
                plan.append((kind, node, group_ids, sets, values, tag))
            elif kind == "multicast":
                dsts = frozenset(
                    draw(
                        st.sets(
                            st.sampled_from(computes),
                            min_size=1,
                            max_size=min(4, len(computes)),
                        )
                    )
                )
                count = draw(st.integers(1, 8))
                values = [draw(st.integers(-50, 50)) for _ in range(count)]
                plan.append((kind, node, None, [dsts], values, tag))
            else:
                dst = draw(st.sampled_from(computes))
                count = draw(st.integers(1, 8))
                values = [draw(st.integers(-50, 50)) for _ in range(count)]
                plan.append((kind, node, None, [frozenset({dst})], values, tag))
    return computes, plan


@st.composite
def multicast_instances(draw):
    tree = draw(tree_topologies(min_nodes=3, max_nodes=10))
    computes, plan = _random_multicast_plan(draw, tree)
    return tree, computes, plan


class TestExchangeMulticastEquivalenceProperty:
    @given(multicast_instances())
    @settings(max_examples=60, deadline=None)
    def test_batched_matches_looped_and_per_send(self, instance):
        """The issue's contract: byte-identical storage, received
        counts, and per-edge ledgers between one exchange_multicast
        call, the equivalent multicast loop, and the legacy per-send
        mode, on random topologies with interleaved traffic."""
        tree, computes, plan = instance

        def replay(cluster, expand_batched):
            with cluster.round() as ctx:
                for kind, node, group_ids, sets, values, tag in plan:
                    if kind == "send":
                        (dst,) = sets[0]
                        ctx.send(node, dst, values, tag=tag)
                    elif kind == "multicast":
                        ctx.multicast(node, sets[0], values, tag=tag)
                    elif expand_batched:
                        ids = np.asarray(group_ids, dtype=np.int64)
                        chunk = np.asarray(values, dtype=np.int64)
                        for index in np.unique(ids):
                            ctx.multicast(
                                node, sets[index], chunk[ids == index], tag=tag
                            )
                    else:
                        ctx.exchange_multicast(
                            node, group_ids, sets, values, tag=tag
                        )

        bulk = Cluster(tree, exchange_mode="bulk")
        replay(bulk, expand_batched=False)
        looped = Cluster(tree, exchange_mode="bulk")
        replay(looped, expand_batched=True)
        legacy = Cluster(tree, exchange_mode="per-send")
        replay(legacy, expand_batched=False)

        reference = _snapshot(looped)
        assert _snapshot(bulk) == reference
        assert _snapshot(legacy) == reference

    @given(multicast_instances())
    @settings(max_examples=40, deadline=None)
    def test_multicast_loads_matches_steiner_walks(self, instance):
        """The vectorized Steiner-flow charger equals per-group walks."""
        tree, computes, plan = instance
        oracle = PathOracle(tree)
        routing = RoutingIndex(tree)
        srcs, flat, starts, ends, counts = [], [], [], [], []
        expected: dict = {}
        for _kind, node, group_ids, sets, values, _tag in plan:
            ids = np.asarray(
                group_ids if group_ids is not None else [0] * len(values),
                dtype=np.int64,
            )
            for index in np.unique(ids):
                count = int((ids == index).sum())
                if count == 0:
                    continue
                dsts = sets[index]
                srcs.append(routing.index_of[node])
                starts.append(len(flat))
                flat.extend(routing.index_of[d] for d in dsts)
                ends.append(len(flat))
                counts.append(count)
                for edge in oracle.steiner_edges(node, dsts):
                    expected[edge] = expected.get(edge, 0) + count
        if not srcs:
            return
        got = routing.multicast_loads(
            np.asarray(srcs),
            np.asarray(flat),
            np.asarray(starts),
            np.asarray(ends),
            np.asarray(counts),
        )
        assert got == expected

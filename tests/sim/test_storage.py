"""Unit tests for the columnar storage layer (ColumnarStore).

The load-bearing contracts: appends reference chunks without copying,
reads are read-only zero-copy views (the single-chunk aliasing case is
the regression this file pins down), compaction is lazy, cached, and
counted, and sizes are maintained incrementally.
"""

import numpy as np
import pytest

from repro.obs.metrics import collecting
from repro.sim.storage import ColumnarStore
from repro.topology.builders import star
from repro.sim.cluster import Cluster


class TestColumnarStore:
    def test_view_of_empty_column_is_empty_readonly(self):
        store = ColumnarStore()
        view = store.view("v1", "R")
        assert len(view) == 0
        assert not view.flags.writeable

    def test_single_chunk_view_aliases_the_chunk(self):
        # the zero-copy contract: a single-chunk column is served as a
        # direct view of the delivered array, no concatenate, no copy
        store = ColumnarStore()
        chunk = np.arange(5, dtype=np.int64)
        store.append("v1", "R", chunk)
        view = store.view("v1", "R")
        assert np.shares_memory(view, chunk)
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0] = 99

    def test_multi_chunk_view_compacts_once_and_caches(self):
        store = ColumnarStore()
        store.append("v1", "R", np.arange(3, dtype=np.int64))
        store.append("v1", "R", np.arange(3, 6, dtype=np.int64))
        assert store.chunk_count("v1", "R") == 2
        first = store.view("v1", "R")
        assert first.tolist() == [0, 1, 2, 3, 4, 5]
        assert store.chunk_count("v1", "R") == 1
        # repeated reads return the same cached object
        assert store.view("v1", "R") is first

    def test_append_invalidates_the_cached_view(self):
        store = ColumnarStore()
        store.append("v1", "R", np.arange(2, dtype=np.int64))
        before = store.view("v1", "R")
        store.append("v1", "R", np.arange(2, 4, dtype=np.int64))
        after = store.view("v1", "R")
        assert after is not before
        assert after.tolist() == [0, 1, 2, 3]

    def test_compactions_are_counted_per_tag(self):
        store = ColumnarStore()
        with collecting() as registry:
            store.append("v1", "R", np.arange(2, dtype=np.int64))
            store.append("v1", "R", np.arange(2, dtype=np.int64))
            store.view("v1", "R")  # multi-chunk: counts
            store.view("v1", "R")  # cached: does not count
            store.append("v2", "R", np.arange(2, dtype=np.int64))
            store.view("v2", "R")  # single-chunk: does not count
        counters = registry.snapshot()["counters"]
        assert counters["repro_storage_compactions_total"] == {"tag=R": 1}

    def test_sizes_are_incremental(self):
        store = ColumnarStore()
        store.append("v1", "R", np.arange(3, dtype=np.int64))
        store.append("v1", "R", np.arange(4, dtype=np.int64))
        store.append("v1", "S", np.arange(2, dtype=np.int64))
        assert store.size("v1", "R") == 7
        assert store.size("v1") == 9
        assert store.sizes() == {"v1": {"R": 7, "S": 2}}

    def test_pop_removes_and_returns_readonly(self):
        store = ColumnarStore()
        store.append("v1", "R", np.arange(3, dtype=np.int64))
        values = store.pop("v1", "R")
        assert values.tolist() == [0, 1, 2]
        assert not values.flags.writeable
        assert store.size("v1", "R") == 0
        assert len(store.view("v1", "R")) == 0

    def test_discard_and_clear(self):
        store = ColumnarStore()
        store.append("v1", "R", np.arange(3, dtype=np.int64))
        store.append("v2", "S", np.arange(2, dtype=np.int64))
        store.discard("v1", "R")
        assert store.size("v1", "R") == 0
        store.discard("ghost", "R")  # no-op
        store.clear()
        assert store.sizes() == {}

    def test_tags_and_nodes(self):
        store = ColumnarStore()
        store.append("v1", "R", np.arange(1, dtype=np.int64))
        store.append("v1", "S", np.arange(1, dtype=np.int64))
        assert store.tags("v1") == frozenset({"R", "S"})
        assert store.tags("ghost") == frozenset()
        assert set(store.nodes()) == {"v1"}


class TestClusterAliasing:
    """The single-chunk aliasing regression at the cluster surface."""

    def test_local_of_put_array_is_readonly_alias(self):
        # put() references the caller's array; local() serves it back as
        # a writeable=False view — a protocol mutating the return value
        # must raise instead of silently rewriting storage
        tree = star(3)
        cluster = Cluster(tree)
        original = np.arange(10, dtype=np.int64)
        cluster.put("v1", "R", original)
        local = cluster.local("v1", "R")
        assert np.shares_memory(local, original)
        assert not local.flags.writeable
        with pytest.raises(ValueError):
            local[0] = -1
        assert cluster.local("v1", "R").tolist() == list(range(10))

    def test_take_returns_readonly(self):
        tree = star(3)
        cluster = Cluster(tree)
        cluster.put("v1", "R", np.arange(4, dtype=np.int64))
        taken = cluster.take("v1", "R")
        assert not taken.flags.writeable
        assert cluster.local_size("v1", "R") == 0

"""Unit tests for the cost ledger (the Section 2 cost model)."""

import math

import pytest

from repro.errors import ProtocolError
from repro.sim.ledger import CostLedger
from repro.topology.builders import mpc_star, star


@pytest.fixture
def ledger(simple_star):
    return CostLedger(simple_star)


class TestRoundLifecycle:
    def test_cannot_add_outside_round(self, ledger):
        with pytest.raises(ProtocolError, match="no round"):
            ledger.add_load(("v1", "w"), 5)

    def test_cannot_open_twice(self, ledger):
        ledger.open_round()
        with pytest.raises(ProtocolError, match="still open"):
            ledger.open_round()

    def test_cannot_close_unopened(self, ledger):
        with pytest.raises(ProtocolError, match="no round"):
            ledger.close_round()

    def test_round_count(self, ledger):
        for _ in range(3):
            ledger.open_round()
            ledger.close_round()
        assert ledger.num_rounds == 3


class TestAccounting:
    def test_loads_accumulate_per_edge(self, ledger):
        ledger.open_round()
        ledger.add_load(("v1", "w"), 5)
        ledger.add_load(("v1", "w"), 3)
        ledger.close_round()
        assert ledger.round_loads(0) == {("v1", "w"): 8}

    def test_rejects_unknown_edge(self, ledger):
        ledger.open_round()
        with pytest.raises(Exception):
            ledger.add_load(("v1", "v2"), 1)

    def test_rejects_negative_load(self, ledger):
        ledger.open_round()
        with pytest.raises(ProtocolError, match="negative"):
            ledger.add_load(("v1", "w"), -1)

    def test_add_loads_batch_equals_sequential(self, simple_star):
        batched, sequential = CostLedger(simple_star), CostLedger(simple_star)
        edges = [("v1", "w"), ("w", "v2"), ("v1", "w")]
        counts = [5, 2, 3]
        batched.open_round()
        batched.add_loads(edges, counts)
        batched.close_round()
        sequential.open_round()
        for edge, count in zip(edges, counts):
            sequential.add_load(edge, count)
        sequential.close_round()
        assert batched.round_loads(0) == sequential.round_loads(0)

    def test_add_loads_outside_round_rejected(self, ledger):
        with pytest.raises(ProtocolError, match="no round"):
            ledger.add_loads([("v1", "w")], [1])

    def test_add_loads_rejects_negative(self, ledger):
        ledger.open_round()
        with pytest.raises(ProtocolError, match="negative"):
            ledger.add_loads([("v1", "w")], [-2])

    def test_add_loads_rejects_unknown_edge(self, ledger):
        ledger.open_round()
        with pytest.raises(Exception):
            ledger.add_loads([("v1", "v2")], [1])

    def test_round_cost_divides_by_bandwidth(self, simple_star):
        # simple_star bandwidths: v1=1, v2=2, v3=4, v4=8
        ledger = CostLedger(simple_star)
        ledger.open_round()
        ledger.add_load(("v2", "w"), 10)  # 10 / 2 = 5
        ledger.add_load(("w", "v4"), 16)  # 16 / 8 = 2
        ledger.close_round()
        assert ledger.round_cost(0) == 5.0

    def test_total_cost_sums_rounds(self, simple_star):
        ledger = CostLedger(simple_star)
        ledger.open_round()
        ledger.add_load(("v1", "w"), 3)
        ledger.close_round()
        ledger.open_round()
        ledger.add_load(("v1", "w"), 4)
        ledger.close_round()
        assert ledger.total_cost() == 7.0

    def test_empty_round_costs_zero(self, ledger):
        ledger.open_round()
        ledger.close_round()
        assert ledger.round_cost(0) == 0.0

    def test_infinite_bandwidth_costs_nothing(self):
        tree = mpc_star(3)
        ledger = CostLedger(tree)
        ledger.open_round()
        ledger.add_load(("v1", "o"), 1000)  # uplink: infinite bandwidth
        ledger.close_round()
        assert ledger.round_cost(0) == 0.0

    def test_bits_conversion(self, simple_star):
        ledger = CostLedger(simple_star, bits_per_element=32)
        ledger.open_round()
        ledger.add_load(("v1", "w"), 10)
        ledger.close_round()
        assert ledger.total_cost_bits() == 320.0

    def test_rejects_nonpositive_bits(self, simple_star):
        with pytest.raises(ProtocolError):
            CostLedger(simple_star, bits_per_element=0)


class TestQueries:
    def test_edge_total_across_rounds(self, ledger):
        for amount in (2, 5):
            ledger.open_round()
            ledger.add_load(("v1", "w"), amount)
            ledger.close_round()
        assert ledger.edge_total(("v1", "w")) == 7
        assert ledger.edge_total(("w", "v1")) == 0

    def test_total_elements(self, ledger):
        ledger.open_round()
        ledger.add_load(("v1", "w"), 2)
        ledger.add_load(("w", "v2"), 3)
        ledger.close_round()
        assert ledger.total_elements() == 5

    def test_bottleneck(self, simple_star):
        ledger = CostLedger(simple_star)
        ledger.open_round()
        ledger.add_load(("v1", "w"), 10)  # 10/1
        ledger.add_load(("v4", "w"), 40)  # 40/8
        ledger.close_round()
        edge, cost = ledger.bottleneck()
        assert edge == ("v1", "w")
        assert cost == 10.0

    def test_bottleneck_empty(self, ledger):
        assert ledger.bottleneck() is None

    def test_summary_fields(self, ledger):
        ledger.open_round()
        ledger.add_load(("v1", "w"), 4)
        ledger.close_round()
        summary = ledger.summary()
        assert summary["rounds"] == 1
        assert summary["cost_elements"] == 4.0
        assert summary["per_round_cost"] == [4.0]

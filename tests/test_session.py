"""Tests for the session-scoped engine (repro.session)."""

import threading

import pytest

import repro
from repro.engine import RunPlan
from repro.errors import AnalysisError, ProtocolError
from repro.plan import PlanCache, chain_catalog, chain_query
from repro.session import SCHEDULES, EngineSession
from repro.sim.cluster import default_exchange_mode, use_exchange_mode
from repro.topology.artifacts import ArtifactCache, get_artifact_cache
from repro.topology.builders import two_level


@pytest.fixture(scope="module")
def tree():
    return two_level([3, 3], uplink_bandwidth=2.0)


@pytest.fixture(scope="module")
def dist(tree):
    return repro.random_distribution(
        tree, r_size=300, s_size=300, policy="zipf", seed=4
    )


def _strip(report):
    payload = report.to_dict()
    payload.pop("wall_time_s", None)
    payload.pop("metrics", None)
    return payload


class TestSessionRuns:
    def test_warm_run_matches_cold_run(self, tree, dist):
        cold = repro.run("set-intersection", tree, dist, seed=2)
        with EngineSession(tree) as session:
            warm = session.run("set-intersection", dist, seed=2)
        assert _strip(warm) == _strip(cold)

    def test_repeated_runs_hit_artifact_cache(self, tree, dist):
        with EngineSession(tree) as session:
            for _ in range(3):
                session.run("set-intersection", dist)
            stats = session.artifact_cache.stats()
        # one miss at construction, every run a hit
        assert stats["misses"] == 1
        assert stats["hits"] >= 3

    def test_pinned_distribution_default(self, tree, dist):
        with EngineSession(tree, distribution=dist) as session:
            report = session.run("set-intersection")
        cold = repro.run("set-intersection", tree, dist)
        assert _strip(report) == _strip(cold)

    def test_missing_distribution_raises(self, tree):
        with EngineSession(tree) as session:
            with pytest.raises(AnalysisError, match="no distribution"):
                session.run("set-intersection")

    def test_run_with_result_returns_outputs(self, tree, dist):
        with EngineSession(tree) as session:
            report, result = session.run_with_result("set-intersection", dist)
        assert report.cost == result.cost

    def test_num_workers_requires_process_backend(self, tree):
        with pytest.raises(AnalysisError, match="num_workers"):
            EngineSession(tree, num_workers=2)

    def test_closed_session_rejects_everything(self, tree, dist):
        session = EngineSession(tree)
        session.close()
        with pytest.raises(AnalysisError, match="closed"):
            session.run("set-intersection", dist)
        with pytest.raises(AnalysisError, match="closed"):
            session.run_many([])
        with pytest.raises(AnalysisError, match="closed"):
            session.lower_bound({"task": "set-intersection", "distribution": dist})

    def test_session_scope_does_not_leak_cache(self, tree, dist):
        with EngineSession(tree) as session:
            session.run("set-intersection", dist)
        assert get_artifact_cache() is None

    def test_shared_artifact_cache_across_sessions(self, tree, dist):
        shared = ArtifactCache()
        with EngineSession(tree, artifact_cache=shared):
            pass
        with EngineSession(tree, artifact_cache=shared) as second:
            second.run("set-intersection", dist)
        assert shared.misses == 1
        assert shared.hits >= 1


class TestSessionPlans:
    def test_run_plan_uses_session_cache(self, tree):
        catalog = chain_catalog(tree, num_relations=3, rows=200, seed=0)
        query = chain_query(3)
        with EngineSession(tree, catalog=catalog) as session:
            first = session.run_plan(query)
            second = session.run_plan(query)
            stats = session.plan_cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert first.cost == second.cost

    def test_cached_plan_matches_module_level(self, tree):
        catalog = chain_catalog(tree, num_relations=3, rows=200, seed=0)
        query = chain_query(3)
        cold = repro.run_plan(query, tree, catalog)
        with EngineSession(tree, catalog=catalog) as session:
            session.run_plan(query)  # populate the cache
            warm = session.run_plan(query)  # execute the cached plan
        assert warm.cost == cold.cost
        assert warm.rounds == cold.rounds
        assert [s.protocol for s in warm.stages] == [
            s.protocol for s in cold.stages
        ]

    def test_missing_catalog_raises(self, tree):
        with EngineSession(tree) as session:
            with pytest.raises(AnalysisError, match="no catalog"):
                session.run_plan(chain_query(3))

    def test_bring_your_own_plan_cache(self, tree):
        catalog = chain_catalog(tree, num_relations=3, rows=200, seed=0)
        shared = PlanCache()
        with EngineSession(tree, catalog=catalog, plan_cache=shared) as one:
            one.run_plan(chain_query(3))
        with EngineSession(tree, catalog=catalog, plan_cache=shared) as two:
            two.run_plan(chain_query(3))
        assert shared.hits == 1


class TestRunMany:
    def _batch(self, dist, tasks=("set-intersection", "sorting", "equijoin")):
        return [{"task": task, "distribution": dist} for task in tasks]

    def test_results_in_submission_order(self, tree, dist):
        batch = self._batch(dist)
        with EngineSession(tree) as session:
            reports = session.run_many(batch)
        cold = repro.run_many(
            [dict(plan, tree=tree) for plan in batch]
        )
        assert [r.task for r in reports] == [p["task"] for p in batch]
        for warm, cold_report in zip(reports, cold):
            assert _strip(warm) == _strip(cold_report)

    def test_fifo_schedule_matches_cost_schedule_results(self, tree, dist):
        batch = self._batch(dist)
        with EngineSession(tree) as session:
            by_cost = session.run_many(batch, schedule="cost")
            by_fifo = session.run_many(batch, schedule="fifo")
        assert [_strip(r) for r in by_cost] == [_strip(r) for r in by_fifo]

    def test_unknown_schedule_rejected(self, tree, dist):
        with EngineSession(tree) as session:
            with pytest.raises(AnalysisError, match="schedule"):
                session.run_many(self._batch(dist), schedule="lifo")
        assert SCHEDULES == ("cost", "fifo")

    def test_max_bound_rejects_expensive_plans(self, tree, dist):
        batch = self._batch(dist)
        with EngineSession(tree) as session:
            bounds = [session.lower_bound(plan) for plan in batch]
            budget = sorted(bounds)[0]  # admit only the cheapest
            reports = session.run_many(batch, max_bound=budget)
            summary = session.summary()
        admitted = [i for i, b in enumerate(bounds) if b <= budget]
        for index, report in enumerate(reports):
            if index in admitted:
                assert report is not None
                assert report.task == batch[index]["task"]
            else:
                assert report is None
        assert summary["rejected"] == len(batch) - len(admitted)
        assert summary["batches"] == 1

    def test_lower_bound_matches_report_bound(self, tree, dist):
        with EngineSession(tree) as session:
            bound = session.lower_bound(
                {"task": "set-intersection", "distribution": dist}
            )
            report = session.run("set-intersection", dist)
        assert bound == pytest.approx(report.lower_bound)

    def test_run_many_does_not_mutate_caller_plans(self, tree, dist):
        plan = RunPlan(task="set-intersection", tree=tree, distribution=dist)
        with EngineSession(
            tree, backend="process", num_workers=2
        ) as session:
            session.run_many([plan])
        assert plan.backend is None
        assert plan.num_workers is None

    def test_pinned_distribution_fills_batch(self, tree, dist):
        with EngineSession(tree, distribution=dist) as session:
            reports = session.run_many([{"task": "set-intersection"}])
        assert reports[0] is not None
        cold = repro.run("set-intersection", tree, dist)
        assert _strip(reports[0]) == _strip(cold)


class TestProcessBackend:
    def test_process_session_identical_to_sim(self, tree, dist):
        cold = repro.run("set-intersection", tree, dist, seed=2)
        with EngineSession(
            tree, backend="process", num_workers=2
        ) as session:
            warm = session.run("set-intersection", dist, seed=2)
        assert warm.cost == cold.cost
        assert warm.rounds == cold.rounds
        assert warm.meta["result"] == cold.meta["result"]

    def test_call_site_backend_override(self, tree, dist):
        with EngineSession(tree) as session:
            report = session.run(
                "set-intersection", dist, backend="process", num_workers=2
            )
        cold = repro.run("set-intersection", tree, dist)
        assert report.cost == cold.cost


class TestThreadLocals:
    def test_exchange_mode_stays_thread_local(self, tree, dist):
        seen = {}

        def worker():
            seen["mode"] = default_exchange_mode()

        with use_exchange_mode("per-send"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert default_exchange_mode() == "per-send"
        assert seen["mode"] == "bulk"
        assert default_exchange_mode() == "bulk"

    def test_exchange_mode_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with use_exchange_mode("per-send"):
                raise RuntimeError("boom")
        assert default_exchange_mode() == "bulk"

    def test_unknown_exchange_mode_rejected(self):
        with pytest.raises(ProtocolError):
            with use_exchange_mode("streaming"):
                pass  # pragma: no cover

    def test_session_runs_respect_ambient_exchange_mode(self, tree, dist):
        with EngineSession(tree) as session:
            bulk = session.run("set-intersection", dist)
            with use_exchange_mode("per-send"):
                legacy = session.run("set-intersection", dist)
        assert bulk.cost == legacy.cost
        assert bulk.rounds == legacy.rounds


class TestSummary:
    def test_summary_counts(self, tree, dist):
        catalog = chain_catalog(tree, num_relations=3, rows=200, seed=0)
        with EngineSession(tree, catalog=catalog) as session:
            session.run("set-intersection", dist)
            session.run_plan(chain_query(3))
            session.run_many(
                [{"task": "sorting", "distribution": dist}] * 2
            )
            summary = session.summary()
        assert summary["topology"] == tree.name
        assert summary["fingerprint"] == session.artifact_cache.get(
            tree
        ).fingerprint
        assert summary["backend"] == "ambient"
        assert summary["runs"] == 3
        assert summary["plan_runs"] == 1
        assert summary["batches"] == 1
        assert summary["rejected"] == 0
        assert summary["artifact_cache"]["entries"] == 1
        assert summary["plan_cache"]["misses"] == 1

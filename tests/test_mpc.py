"""Tests for the MPC special case (Section 2.2)."""

import numpy as np
import pytest

from repro.baselines.uniform_hash import uniform_hash_intersect
from repro.data.generators import make_sort_input
from repro.mpc import mpc_star, mpc_uniform_distribution, verify_mpc_equivalence
from repro.sim.cluster import Cluster


class TestMpcStar:
    def test_round_cost_equals_max_received(self):
        tree = mpc_star(4)
        cluster = Cluster(tree)
        with cluster.round() as ctx:
            ctx.send("v1", "v2", np.arange(10), tag="x")
            ctx.send("v3", "v2", np.arange(5), tag="x")
            ctx.send("v2", "v4", np.arange(3), tag="x")
        pairs = verify_mpc_equivalence(cluster)
        assert pairs == [(15.0, 15.0)]  # v2 received 15 elements

    def test_sending_is_free(self):
        tree = mpc_star(3)
        cluster = Cluster(tree)
        with cluster.round() as ctx:
            # one sender fanning out: each receiver gets little, cost small
            ctx.send("v1", "v2", np.arange(100), tag="x")
            ctx.send("v1", "v3", np.arange(100), tag="x")
        assert cluster.ledger.round_cost(0) == 100.0

    def test_uniform_distribution(self):
        tree = mpc_star(4)
        values = make_sort_input(100, seed=0)
        dist = mpc_uniform_distribution(tree, values)
        assert sorted(dist.sizes("R").values()) == [25, 25, 25, 25]

    def test_uniform_hash_join_on_mpc_star(self):
        # The classic MPC hash join runs unchanged on the MPC star and
        # its model cost is the max-received measure.
        from repro.data.generators import random_distribution

        tree = mpc_star(4)
        dist = random_distribution(tree, r_size=200, s_size=200, seed=1)
        result = uniform_hash_intersect(tree, dist, seed=0)
        expected = set(
            np.intersect1d(dist.relation("R"), dist.relation("S")).tolist()
        )
        found: set = set()
        for values in result.outputs.values():
            found |= set(values.tolist())
        assert found == expected
        # cost ~ N/p with p=4, N=400: each node receives about 100
        assert 60 <= result.cost <= 160

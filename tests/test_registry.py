"""Unit tests for the protocol/task registry."""

import pytest

import repro
from repro.errors import AnalysisError
from repro.registry import (
    RegistryError,
    get_protocol,
    get_task,
    list_protocols,
    protocol_table,
    protocols_for,
    register_protocol,
    tasks,
)


class TestCatalog:
    def test_all_tasks_registered(self):
        assert set(tasks()) >= {
            "set-intersection",
            "cartesian-product",
            "sorting",
            "equijoin",
            "groupby-aggregate",
        }

    def test_legacy_protocols_present(self):
        assert set(protocols_for("set-intersection")) >= {
            "tree",
            "star",
            "uniform-hash",
            "gather",
        }
        assert set(protocols_for("cartesian-product")) >= {
            "tree",
            "star",
            "classic-hypercube",
            "gather",
        }
        assert set(protocols_for("sorting")) == {"wts", "terasort", "gather"}

    def test_listing_is_sorted_and_complete(self):
        specs = list_protocols()
        keys = [(s.task, s.name) for s in specs]
        assert keys == sorted(keys)
        assert len(specs) >= 15
        one_task = list_protocols("sorting")
        assert {s.name for s in one_task} == {"wts", "terasort", "gather"}
        assert all(s.task == "sorting" for s in one_task)

    def test_specs_carry_metadata(self):
        spec = get_protocol("set-intersection", "tree")
        assert spec.func is repro.tree_intersect
        assert spec.kind == "algorithm"
        assert spec.accepts_seed
        assert spec.description
        baseline = get_protocol("sorting", "gather")
        assert baseline.kind == "baseline"
        assert not baseline.accepts_seed

    def test_star_only_protocols_declare_topology(self):
        assert get_protocol("set-intersection", "star").topology == "star"
        assert get_protocol("cartesian-product", "whc").topology == "star"
        assert get_protocol("set-intersection", "tree").topology is None

    def test_protocol_table_matches_specs(self):
        table = protocol_table("sorting")
        assert table["wts"] is repro.weighted_terasort
        assert table["terasort"] is repro.terasort


class TestResolution:
    def test_task_aliases_resolve(self):
        assert get_task("intersection").name == "set-intersection"
        assert get_task("cartesian").name == "cartesian-product"
        assert get_task("sort").name == "sorting"
        assert get_task("join").name == "equijoin"

    def test_alias_resolves_for_protocol_lookup(self):
        assert (
            get_protocol("intersection", "tree").task == "set-intersection"
        )

    def test_unknown_task_rejected(self):
        with pytest.raises(AnalysisError, match="unknown task"):
            get_task("matrix-multiply")

    def test_unknown_protocol_rejected_with_choices(self):
        with pytest.raises(AnalysisError, match="choose from"):
            get_protocol("sorting", "quicksort")


class TestRegistration:
    def test_duplicate_name_rejected(self):
        def imposter(tree, distribution):
            raise AssertionError("never called")

        with pytest.raises(RegistryError, match="already registered"):
            register_protocol(task="sorting", name="wts")(imposter)

    def test_reregistering_same_callable_keeps_original_spec(self):
        spec = get_protocol("sorting", "wts")
        # A stray second decoration (even with no metadata) must not
        # rewrite the catalog entry.
        assert register_protocol(task="sorting", name="wts")(spec.func) is (
            spec.func
        )
        unchanged = get_protocol("sorting", "wts")
        assert unchanged.accepts_seed
        assert unchanged.description == spec.description

    def test_reloaded_definition_replaces_spec(self):
        import repro.registry as registry_module

        original = get_protocol("sorting", "wts")

        clone = type(original.func)(
            original.func.__code__,
            original.func.__globals__,
            original.func.__name__,
            original.func.__defaults__,
            original.func.__closure__,
        )
        clone.__qualname__ = original.func.__qualname__
        clone.__module__ = original.func.__module__
        clone.__kwdefaults__ = original.func.__kwdefaults__
        try:
            # Same module + qualname = a module reload: allowed.
            register_protocol(
                task="sorting", name="wts", accepts_seed=True
            )(clone)
            assert get_protocol("sorting", "wts").func is clone
        finally:
            registry_module._PROTOCOL_SPECS[("sorting", "wts")] = original

    def test_bad_kind_rejected(self):
        with pytest.raises(RegistryError, match="kind"):
            register_protocol(task="sorting", name="x", kind="magic")

    def test_decorator_returns_function_unchanged(self):
        import repro.registry as registry_module

        def probe(tree, distribution):
            return None

        try:
            decorated = register_protocol(
                task="sorting", name="test-probe", description="probe"
            )(probe)
            assert decorated is probe
            assert (
                get_protocol("sorting", "test-probe").description == "probe"
            )
        finally:
            registry_module._PROTOCOL_SPECS.pop(("sorting", "test-probe"))


class TestLowerBoundOpts:
    def test_relational_tasks_declare_bound_opts(self):
        assert get_task("equijoin").lower_bound_opts == ("r_tag", "s_tag")
        assert get_task("groupby-aggregate").lower_bound_opts == (
            "tag",
            "payload_bits",
        )

    def test_engine_forwards_bound_opts(self):
        # The group-by bound decodes keys, so it must see the same
        # payload_bits the protocol ran with; a mismatched width would
        # report a bound over garbage keys.
        import numpy as np

        tree = repro.two_level([2, 2], uplink_bandwidth=1.0)
        nodes = tree.left_to_right_compute_order()
        keys = np.arange(8)
        values = np.arange(8)
        dist = repro.Distribution(
            {
                nodes[0]: {
                    "R": repro.encode_tuples(keys, values, payload_bits=32)
                },
                nodes[1]: {
                    "R": repro.encode_tuples(keys, values, payload_bits=32)
                },
            }
        )
        report = repro.run(
            "groupby-aggregate", tree, dist, payload_bits=32, seed=0
        )
        from repro.queries.aggregate import groupby_lower_bound

        direct = groupby_lower_bound(tree, dist, payload_bits=32)
        assert report.lower_bound == pytest.approx(direct.value)
        assert direct.value == pytest.approx(4.0)

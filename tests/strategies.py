"""Shared hypothesis strategies: random trees, placements, instances.

Random trees are built as recursive trees (each node attaches to a
uniformly chosen earlier node), which reaches every tree shape; leaves
become compute nodes, matching the paper's normalized form.  Bandwidths
are drawn from a small grid of powers of two so bottlenecks move around
without floating-point noise.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.data.distribution import Distribution
from repro.topology.tree import TreeTopology

BANDWIDTH_CHOICES = (0.5, 1.0, 2.0, 4.0, 8.0)


@st.composite
def tree_topologies(
    draw,
    *,
    min_nodes: int = 3,
    max_nodes: int = 12,
    symmetric: bool = True,
) -> TreeTopology:
    """A random symmetric tree whose leaves are the compute nodes."""
    num_nodes = draw(st.integers(min_nodes, max_nodes))
    parents = [
        draw(st.integers(0, i - 1)) for i in range(1, num_nodes)
    ]
    bandwidths = [
        draw(st.sampled_from(BANDWIDTH_CHOICES)) for _ in range(1, num_nodes)
    ]
    edges = {
        (f"n{i}", f"n{parent}"): bandwidth
        for i, (parent, bandwidth) in enumerate(
            zip(parents, bandwidths), start=1
        )
    }
    degree: dict[str, int] = {}
    for (a, b) in edges:
        degree[a] = degree.get(a, 0) + 1
        degree[b] = degree.get(b, 0) + 1
    computes = [node for node, d in degree.items() if d == 1]
    return TreeTopology.from_undirected(
        edges, computes, name=f"hyp-tree({num_nodes})"
    )


@st.composite
def node_sizes(draw, tree: TreeTopology, *, max_size: int = 40) -> dict:
    """Random per-compute-node sizes (some may be zero)."""
    return {
        v: draw(st.integers(0, max_size))
        for v in sorted(tree.compute_nodes, key=str)
    }


@st.composite
def set_pair_instances(
    draw,
    *,
    min_nodes: int = 3,
    max_nodes: int = 10,
    max_fragment: int = 25,
):
    """A random tree plus an (R, S) placement with controlled overlap."""
    tree = draw(tree_topologies(min_nodes=min_nodes, max_nodes=max_nodes))
    computes = sorted(tree.compute_nodes, key=str)
    r_sizes = [draw(st.integers(0, max_fragment)) for _ in computes]
    s_sizes = [draw(st.integers(0, max_fragment)) for _ in computes]
    r_total, s_total = sum(r_sizes), sum(s_sizes)
    overlap = draw(st.integers(0, min(r_total, s_total)))
    pool = np.arange(1, r_total + s_total - overlap + 1, dtype=np.int64)
    shuffle_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(shuffle_seed)
    rng.shuffle(pool)
    common = pool[:overlap]
    r_values = np.concatenate([common, pool[overlap:r_total]])
    s_values = np.concatenate([common, pool[r_total:]])
    rng.shuffle(r_values)
    rng.shuffle(s_values)
    placements: dict = {}
    r_offset = s_offset = 0
    for node, r_count, s_count in zip(computes, r_sizes, s_sizes):
        placements[node] = {
            "R": r_values[r_offset : r_offset + r_count],
            "S": s_values[s_offset : s_offset + s_count],
        }
        r_offset += r_count
        s_offset += s_count
    return tree, Distribution(placements)


@st.composite
def sort_instances(
    draw,
    *,
    min_nodes: int = 3,
    max_nodes: int = 10,
    max_fragment: int = 30,
):
    """A random tree plus a single-relation placement of distinct values."""
    tree = draw(tree_topologies(min_nodes=min_nodes, max_nodes=max_nodes))
    computes = sorted(tree.compute_nodes, key=str)
    sizes = [draw(st.integers(0, max_fragment)) for _ in computes]
    total = sum(sizes)
    values = np.arange(1, total + 1, dtype=np.int64)
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    rng.shuffle(values)
    placements: dict = {}
    offset = 0
    for node, count in zip(computes, sizes):
        placements[node] = {"R": values[offset : offset + count]}
        offset += count
    return tree, Distribution(placements)

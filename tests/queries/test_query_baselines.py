"""The gather / uniform-hash baselines for the relational tasks."""

import numpy as np
import pytest

import repro
from repro.data.generators import random_tuple_distribution
from repro.queries.aggregate import groupby_lower_bound
from repro.topology.builders import star, two_level


@pytest.fixture
def tree():
    return two_level([3, 3], leaf_bandwidth=[4.0, 1.0], uplink_bandwidth=2.0)


@pytest.fixture
def instance(tree):
    dist = random_tuple_distribution(
        tree, r_size=300, s_size=600, key_space=64, seed=11, policy="zipf"
    )
    return tree, dist


class TestEquijoinBaselines:
    @pytest.mark.parametrize("protocol", ["tree", "uniform-hash", "gather"])
    def test_all_protocols_agree(self, instance, protocol):
        tree, dist = instance
        report = repro.run("equijoin", tree, dist, protocol=protocol, seed=3)
        # the engine verifier checked the pair count; record invariants
        assert report.rounds == 1
        assert report.cost > 0

    def test_materialized_pairs_identical(self, instance):
        tree, dist = instance
        all_pairs = {}
        for protocol in ("tree", "uniform-hash", "gather"):
            _, result = repro.engine.run_with_result(
                "equijoin", tree, dist, protocol=protocol, seed=3,
                materialize=True,
            )
            rows = [
                tuple(row)
                for output in result.outputs.values()
                for row in output.get("pairs", np.empty((0, 3))).tolist()
            ]
            all_pairs[protocol] = sorted(rows)
        assert all_pairs["tree"] == all_pairs["uniform-hash"]
        assert all_pairs["tree"] == all_pairs["gather"]

    def test_gather_concentrates_output(self, instance):
        tree, dist = instance
        _, result = repro.engine.run_with_result(
            "equijoin", tree, dist, protocol="gather", seed=0
        )
        producing = [
            v for v, o in result.outputs.items() if o["num_pairs"] > 0
        ]
        assert len(producing) <= 1


class TestGroupbyBaselines:
    @pytest.mark.parametrize("protocol", ["tree", "uniform-hash", "gather"])
    @pytest.mark.parametrize("op", ["sum", "count", "min", "max"])
    def test_same_aggregates(self, instance, protocol, op):
        tree, dist = instance
        _, result = repro.engine.run_with_result(
            "groupby-aggregate", tree, dist, protocol=protocol, seed=5, op=op
        )
        merged = {}
        for groups in result.outputs.values():
            merged.update(groups)
        keys, values = repro.decode_tuples(dist.relation("R"))
        expected = {}
        for key, value in zip(keys.tolist(), values.tolist()):
            if op == "sum":
                expected[key] = expected.get(key, 0) + value
            elif op == "count":
                expected[key] = expected.get(key, 0) + 1
            elif op == "min":
                expected[key] = min(expected.get(key, value), value)
            else:
                expected[key] = max(expected.get(key, value), value)
        assert merged == expected

    def test_uniform_hash_pre_aggregates(self, instance):
        tree, dist = instance
        combined = repro.run(
            "groupby-aggregate", tree, dist, protocol="uniform-hash", seed=1
        )
        raw = repro.run(
            "groupby-aggregate", tree, dist, protocol="uniform-hash", seed=1,
            pre_aggregate=False,
        )
        assert combined.cost <= raw.cost


class TestGroupbyLowerBound:
    def test_bound_positive_when_keys_split(self):
        tree = star(3, bandwidth=[1.0, 1.0, 1.0])
        nodes = tree.left_to_right_compute_order()
        encoded = repro.encode_tuples(
            np.array([1, 2, 3]), np.array([7, 7, 7])
        )
        dist = repro.Distribution(
            {
                nodes[0]: {"R": encoded},
                nodes[1]: {"R": encoded.copy()},
            }
        )
        bound = groupby_lower_bound(tree, dist)
        # all three keys live on both sides of each populated link; the
        # full-duplex split halves the forced per-direction crossings
        assert bound.value == pytest.approx(3.0 / 2.0)
        assert bound.bottleneck_edge is not None

    def test_bound_zero_when_keys_local(self):
        tree = star(3)
        nodes = tree.left_to_right_compute_order()
        dist = repro.Distribution(
            {
                nodes[0]: {
                    "R": repro.encode_tuples(np.array([1, 1]), np.array([2, 3]))
                }
            }
        )
        assert groupby_lower_bound(tree, dist).value == 0.0

    def test_bound_below_every_protocol(self, instance):
        tree, dist = instance
        bound = groupby_lower_bound(tree, dist)
        assert bound.value > 0
        for protocol in ("tree", "uniform-hash", "gather"):
            report = repro.run(
                "groupby-aggregate", tree, dist, protocol=protocol, seed=2
            )
            assert report.cost >= bound.value - 1e-9, protocol
            assert report.lower_bound == pytest.approx(bound.value)

    def test_registered_in_task_spec(self):
        spec = repro.get_task("groupby-aggregate")
        assert spec.lower_bound is not None
        assert "payload_bits" in spec.lower_bound_opts

"""Tests for distribution-aware group-by aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.queries.aggregate import tree_groupby_aggregate
from repro.queries.tuples import encode_tuples
from repro.topology.builders import star
from repro.util.seeding import derive_seed


def place_tuples(tree, rows, seed=0):
    nodes = tree.left_to_right_compute_order()
    per_node: dict = {node: [] for node in nodes}
    for index, row in enumerate(rows):
        per_node[nodes[(index + seed) % len(nodes)]].append(row)
    return Distribution(
        {
            node: {
                "R": encode_tuples(
                    [k for k, _ in rows_], [v for _, v in rows_]
                )
            }
            for node, rows_ in per_node.items()
        }
    )


def merged_outputs(result) -> dict:
    merged: dict = {}
    for node_output in result.outputs.values():
        for key, value in node_output.items():
            assert key not in merged, "key owned by two nodes"
            merged[key] = value
    return merged


def reference(rows, op) -> dict:
    expected: dict = {}
    for key, value in rows:
        if op == "sum":
            expected[key] = expected.get(key, 0) + value
        elif op == "count":
            expected[key] = expected.get(key, 0) + 1
        elif op == "min":
            expected[key] = min(expected.get(key, value), value)
        elif op == "max":
            expected[key] = max(expected.get(key, value), value)
    return expected


class TestGroupByAggregate:
    @pytest.mark.parametrize("op", ["sum", "count", "min", "max"])
    def test_matches_reference(self, any_topology, op):
        rows = [(k % 7, (k * 13) % 50 + 1) for k in range(60)]
        dist = place_tuples(any_topology, rows)
        result = tree_groupby_aggregate(any_topology, dist, op=op, seed=1)
        assert merged_outputs(result) == reference(rows, op)

    def test_single_round(self, simple_star):
        dist = place_tuples(simple_star, [(1, 2), (1, 3)])
        assert tree_groupby_aggregate(simple_star, dist).rounds == 1

    def test_empty_input(self, simple_star):
        result = tree_groupby_aggregate(simple_star, Distribution({}))
        assert merged_outputs(result) == {}

    def test_pre_aggregation_reduces_cost(self, simple_star):
        # few keys, many tuples: partials are tiny, raw tuples are not.
        rows = [(k % 3, 1) for k in range(3000)]
        dist = place_tuples(simple_star, rows)
        combined = tree_groupby_aggregate(simple_star, dist, op="sum", seed=2)
        raw = tree_groupby_aggregate(
            simple_star, dist, op="sum", seed=2, pre_aggregate=False
        )
        assert merged_outputs(combined) == merged_outputs(raw)
        assert combined.cost < raw.cost / 10

    def test_count_without_preaggregation(self, simple_star):
        rows = [(k % 4, 9) for k in range(40)]
        dist = place_tuples(simple_star, rows)
        result = tree_groupby_aggregate(
            simple_star, dist, op="count", pre_aggregate=False
        )
        assert merged_outputs(result) == reference(rows, "count")

    def test_rejects_unknown_op(self, simple_star):
        dist = place_tuples(simple_star, [(1, 1)])
        with pytest.raises(ProtocolError, match="unsupported op"):
            tree_groupby_aggregate(simple_star, dist, op="median")

    def test_owners_follow_placement_weights(self):
        # nearly all data on v1: v1 should own most groups.
        tree = star(4)
        rows = [(k, 1) for k in range(200)]
        nodes = tree.left_to_right_compute_order()
        placements = {
            nodes[0]: {"R": encode_tuples([k for k, _ in rows[:190]],
                                          [v for _, v in rows[:190]])},
            nodes[1]: {"R": encode_tuples([k for k, _ in rows[190:]],
                                          [v for _, v in rows[190:]])},
        }
        dist = Distribution(placements)
        result = tree_groupby_aggregate(tree, dist, op="sum", seed=3)
        owned = {v: len(result.outputs.get(v, {})) for v in nodes}
        assert owned[nodes[0]] > 150

    @given(
        num_rows=st.integers(0, 80),
        key_space=st.integers(1, 10),
        op=st.sampled_from(["sum", "count", "min", "max"]),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_matches_reference(self, num_rows, key_space, op, seed):
        tree = star(5, bandwidth=[1, 2, 4, 2, 1])
        rng = np.random.default_rng(derive_seed(seed, "agg-prop"))
        rows = [
            (int(k), int(v) + 1)
            for k, v in zip(
                rng.integers(0, key_space, num_rows),
                rng.integers(0, 1000, num_rows),
            )
        ]
        dist = place_tuples(tree, rows, seed=seed)
        result = tree_groupby_aggregate(tree, dist, op=op, seed=seed)
        assert merged_outputs(result) == reference(rows, op)

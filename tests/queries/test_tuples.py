"""Unit tests for tuple encoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DistributionError
from repro.queries.tuples import decode_tuples, encode_tuples


class TestEncoding:
    def test_roundtrip(self):
        keys = np.array([0, 5, 1_000_000])
        payloads = np.array([7, 0, 12345])
        encoded = encode_tuples(keys, payloads)
        out_keys, out_payloads = decode_tuples(encoded)
        assert np.array_equal(out_keys, keys)
        assert np.array_equal(out_payloads, payloads)

    def test_custom_payload_width(self):
        encoded = encode_tuples([3], [1], payload_bits=4)
        keys, payloads = decode_tuples(encoded, payload_bits=4)
        assert keys.tolist() == [3]
        assert payloads.tolist() == [1]

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DistributionError):
            encode_tuples([1, 2], [3])

    def test_rejects_payload_overflow(self):
        with pytest.raises(DistributionError):
            encode_tuples([1], [16], payload_bits=4)

    def test_rejects_negative_payload(self):
        with pytest.raises(DistributionError):
            encode_tuples([1], [-1])

    def test_rejects_key_overflow(self):
        with pytest.raises(DistributionError):
            encode_tuples([2**60], [0], payload_bits=20)

    def test_rejects_bad_width(self):
        with pytest.raises(DistributionError):
            encode_tuples([1], [1], payload_bits=0)

    def test_empty_arrays(self):
        encoded = encode_tuples([], [])
        assert len(encoded) == 0

    @given(
        keys=st.lists(st.integers(0, 2**40), max_size=50),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, keys, seed):
        rng = np.random.default_rng(seed)
        payloads = rng.integers(0, 2**20, size=len(keys))
        encoded = encode_tuples(np.array(keys, dtype=np.int64), payloads)
        out_keys, out_payloads = decode_tuples(encoded)
        assert out_keys.tolist() == keys
        assert np.array_equal(out_payloads, payloads)

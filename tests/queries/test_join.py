"""Tests for the distribution-aware equi-join."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.distribution import Distribution
from repro.queries.join import equijoin_lower_bound, tree_equijoin
from repro.queries.tuples import encode_tuples
from repro.topology.builders import star, two_level
from repro.util.seeding import derive_seed


def build_instance(tree, r_rows, s_rows, seed=0):
    """Place encoded (key, payload) relations round-robin on the tree."""
    nodes = tree.left_to_right_compute_order()
    placements: dict = {node: {"R": [], "S": []} for node in nodes}
    for index, (key, payload) in enumerate(r_rows):
        placements[nodes[index % len(nodes)]]["R"].append((key, payload))
    for index, (key, payload) in enumerate(s_rows):
        placements[nodes[(index * 7 + seed) % len(nodes)]]["S"].append(
            (key, payload)
        )
    encoded = {}
    for node, relations in placements.items():
        encoded[node] = {
            tag: encode_tuples(
                [k for k, _ in rows], [p for _, p in rows]
            )
            for tag, rows in relations.items()
        }
    return Distribution(encoded)


def expected_join(r_rows, s_rows) -> set:
    return {
        (rk, rp, sp)
        for rk, rp in r_rows
        for sk, sp in s_rows
        if rk == sk
    }


def collected_pairs(result) -> set:
    rows: set = set()
    for output in result.outputs.values():
        if "pairs" in output:
            rows |= {tuple(row) for row in output["pairs"].tolist()}
    return rows


class TestTreeEquijoin:
    def test_exact_join_with_duplicates(self, any_topology):
        r_rows = [(1, 10), (1, 11), (2, 20), (3, 30), (5, 50)]
        s_rows = [(1, 100), (2, 200), (2, 201), (4, 400)]
        dist = build_instance(any_topology, r_rows, s_rows)
        result = tree_equijoin(any_topology, dist, seed=1, materialize=True)
        assert collected_pairs(result) == expected_join(r_rows, s_rows)

    def test_pair_counts_without_materialize(self, simple_two_level):
        r_rows = [(k, k) for k in range(30)]
        s_rows = [(k % 10, k) for k in range(50)]
        dist = build_instance(simple_two_level, r_rows, s_rows)
        result = tree_equijoin(simple_two_level, dist, seed=2)
        produced = sum(o["num_pairs"] for o in result.outputs.values())
        assert produced == len(expected_join(r_rows, s_rows))

    def test_single_round(self, simple_star):
        dist = build_instance(simple_star, [(1, 1)], [(1, 2)])
        assert tree_equijoin(simple_star, dist).rounds == 1

    def test_disjoint_keys_empty_join(self, simple_star):
        dist = build_instance(
            simple_star, [(1, 1), (2, 2)], [(3, 3), (4, 4)]
        )
        result = tree_equijoin(simple_star, dist, materialize=True)
        assert collected_pairs(result) == set()

    def test_skewed_key_all_pairs(self, simple_star):
        # one hot key on both sides: output is a full cross product
        r_rows = [(7, i) for i in range(20)]
        s_rows = [(7, 100 + i) for i in range(15)]
        dist = build_instance(simple_star, r_rows, s_rows)
        result = tree_equijoin(simple_star, dist, seed=3)
        produced = sum(o["num_pairs"] for o in result.outputs.values())
        assert produced == 300
        # all pairs of a key are produced at a single node
        assert max(o["num_pairs"] for o in result.outputs.values()) == 300

    def test_swapped_relations(self, simple_star):
        r_rows = [(k, k) for k in range(40)]
        s_rows = [(k, k) for k in range(5)]
        dist = build_instance(simple_star, r_rows, s_rows)
        result = tree_equijoin(simple_star, dist, materialize=True)
        assert result.meta["swapped_relations"]
        assert collected_pairs(result) == expected_join(r_rows, s_rows)

    def test_lower_bound_is_theorem1(self, simple_two_level):
        r_rows = [(k, 0) for k in range(20)]
        s_rows = [(k, 0) for k in range(100)]
        dist = build_instance(simple_two_level, r_rows, s_rows)
        bound = equijoin_lower_bound(simple_two_level, dist)
        assert bound.value > 0
        assert "equi-join" in bound.description

    def test_cost_tracks_bound(self):
        tree = two_level([3, 3], uplink_bandwidth=0.5)
        rng = np.random.default_rng(4)
        r_rows = [(int(k), int(k) % 100) for k in rng.integers(0, 500, 400)]
        s_rows = [(int(k), int(k) % 100) for k in rng.integers(0, 500, 2000)]
        dist = build_instance(tree, r_rows, s_rows)
        result = tree_equijoin(tree, dist, seed=5)
        bound = equijoin_lower_bound(tree, dist)
        assert result.cost <= 6 * bound.value

    def test_empty_relations(self, simple_star):
        dist = Distribution({"v1": {"R": [], "S": []}})
        result = tree_equijoin(simple_star, dist)
        assert all(o["num_pairs"] == 0 for o in result.outputs.values())

    @given(
        num_r=st.integers(0, 40),
        num_s=st.integers(0, 40),
        key_space=st.integers(1, 15),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_exact_join(self, num_r, num_s, key_space, seed):
        tree = star(4, bandwidth=[1, 2, 4, 8])
        rng = np.random.default_rng(derive_seed(seed, "join-prop"))
        r_rows = [
            (int(k), i) for i, k in enumerate(rng.integers(0, key_space, num_r))
        ]
        s_rows = [
            (int(k), 500 + i)
            for i, k in enumerate(rng.integers(0, key_space, num_s))
        ]
        dist = build_instance(tree, r_rows, s_rows, seed=seed)
        result = tree_equijoin(tree, dist, seed=seed, materialize=True)
        assert collected_pairs(result) == expected_join(r_rows, s_rows)

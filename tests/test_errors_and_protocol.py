"""Tests for the exception hierarchy and the ProtocolResult container."""

import pytest

from repro.errors import (
    AnalysisError,
    DistributionError,
    PackingError,
    ProtocolError,
    ReproError,
    TopologyError,
)
from repro.sim.ledger import CostLedger
from repro.sim.protocol import ProtocolResult
from repro.topology.builders import star


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            TopologyError,
            DistributionError,
            ProtocolError,
            PackingError,
            AnalysisError,
        ],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise PackingError("boom")


class TestProtocolResult:
    def make_ledger(self):
        ledger = CostLedger(star(2), bits_per_element=32)
        ledger.open_round()
        ledger.add_load(("v1", "w"), 10)
        ledger.close_round()
        ledger.open_round()
        ledger.close_round()
        return ledger

    def test_from_ledger_derives_fields(self):
        result = ProtocolResult.from_ledger("demo", self.make_ledger())
        assert result.protocol == "demo"
        assert result.rounds == 2
        assert result.cost == 10.0
        assert result.cost_bits == 320.0

    def test_outputs_and_meta_default_empty(self):
        result = ProtocolResult.from_ledger("demo", self.make_ledger())
        assert result.outputs == {}
        assert result.meta == {}

    def test_describe_mentions_rounds_and_cost(self):
        result = ProtocolResult.from_ledger("demo", self.make_ledger())
        text = result.describe()
        assert "rounds=2" in text
        assert "10" in text

"""Unit tests for the plan executor and its reports."""

import numpy as np
import pytest

import repro
from repro.plan.executor import execute_plan
from repro.plan.logical import (
    Filter,
    GroupBy,
    Join,
    JoinCondition,
    Scan,
    chain_query,
    evaluate_reference,
)
from repro.plan.optimizer import optimize
from repro.plan.relation import PlacedRelation, Schema, chain_catalog
from repro.report import PlanReport
from repro.topology.builders import star, two_level


@pytest.fixture
def tree():
    return two_level([3, 3], leaf_bandwidth=[2.0, 1.0], uplink_bandwidth=1.0)


class TestExecution:
    def test_chain_matches_reference(self, tree):
        catalog = chain_catalog(
            tree, num_relations=3, rows=150, key_space=32, seed=7,
            policy="zipf",
        )
        query = chain_query(3)
        plan = optimize(query, tree, catalog)
        report, output = execute_plan(
            plan, tree, catalog, seed=2, keep_output=True
        )
        assert output.multiset() == evaluate_reference(query, catalog)
        assert report.output_rows == output.total_rows
        assert report.cost > 0
        assert len(report.stages) == 2  # two join shuffles

    def test_strategies_agree_on_answer(self, tree):
        catalog = chain_catalog(
            tree, num_relations=3, rows=120, key_space=16, seed=3
        )
        query = chain_query(3)
        reference = evaluate_reference(query, catalog)
        for strategy in ("optimized", "gather", "worst-order"):
            plan = optimize(query, tree, catalog, strategy=strategy)
            _, output = execute_plan(
                plan, tree, catalog, seed=5, keep_output=True
            )
            assert output.multiset() == reference, strategy

    def test_filter_then_join(self, tree):
        catalog = chain_catalog(
            tree, num_relations=2, rows=150, key_space=16, seed=1
        )
        query = Join(
            inputs=(Filter(Scan("R0"), "x0", "<=", 7), Scan("R1")),
            conditions=(JoinCondition(0, "x1", 1, "x1"),),
        )
        plan = optimize(query, tree, catalog)
        report, output = execute_plan(
            plan, tree, catalog, seed=1, keep_output=True
        )
        assert output.multiset() == evaluate_reference(query, catalog)
        assert len(report.stages) == 1

    def test_groupby_pipeline(self, tree):
        catalog = chain_catalog(
            tree, num_relations=2, rows=200, key_space=8, seed=2
        )
        query = GroupBy(chain_query(2), key="x2", value="x0", op="sum")
        plan = optimize(query, tree, catalog)
        report, output = execute_plan(
            plan, tree, catalog, seed=3, keep_output=True
        )
        assert output.multiset() == evaluate_reference(query, catalog)
        assert len(report.stages) == 2  # join + groupby

    def test_empty_input_short_circuits(self, tree):
        nodes = tree.left_to_right_compute_order()
        catalog = {
            "R0": PlacedRelation(Schema(("x0", "x1"), (8, 8)), {}),
            "R1": PlacedRelation(
                Schema(("x1", "x2"), (8, 8)),
                {nodes[0]: np.array([[1, 2]])},
            ),
        }
        query = chain_query(2)
        plan = optimize(query, tree, catalog)
        report, output = execute_plan(
            plan, tree, catalog, seed=0, keep_output=True
        )
        assert output.total_rows == 0
        assert report.cost == 0.0
        assert report.stages[0].meta.get("skipped") == "empty input"

    def test_residual_condition_on_join_key_column(self, tree):
        # Both conditions reference the same left column: the residual
        # equality must read the stage key, which is dropped from the
        # payload (regression: KeyError in _execute_join).
        nodes = tree.left_to_right_compute_order()
        catalog = {
            "A": PlacedRelation(
                Schema(("a", "p"), (8, 8)),
                {nodes[0]: np.array([[3, 10], [4, 11]])},
            ),
            "B": PlacedRelation(
                Schema(("b", "c"), (8, 8)),
                {nodes[1]: np.array([[3, 3], [4, 5]])},
            ),
        }
        query = Join(
            inputs=(Scan("A"), Scan("B")),
            conditions=(
                JoinCondition(0, "a", 1, "b"),
                JoinCondition(0, "a", 1, "c"),
            ),
        )
        plan = optimize(query, tree, catalog)
        _, output = execute_plan(
            plan, tree, catalog, seed=0, keep_output=True
        )
        assert output.multiset() == evaluate_reference(query, catalog)

    def test_wide_payload_groupby_verifies(self, tree):
        # Group-by over a relation whose value column exceeds the
        # default 20-bit payload width: the engine verifier must decode
        # with the stage's payload_bits (regression: false rejection).
        nodes = tree.left_to_right_compute_order()
        wide = 1 << 25
        catalog = {
            "W": PlacedRelation(
                Schema(("k", "v"), (8, 30)),
                {
                    nodes[0]: np.array([[1, wide], [2, wide + 1]]),
                    nodes[1]: np.array([[1, wide + 2], [3, 7]]),
                },
            )
        }
        query = GroupBy(Scan("W"), key="k", value="v", op="max")
        report, output = execute_plan(
            optimize(query, tree, catalog), tree, catalog,
            seed=0, keep_output=True,
        )
        assert output.multiset() == evaluate_reference(query, catalog)
        assert report.stages[0].task == "groupby-aggregate"

    def test_catalog_mismatch_detected(self, tree):
        catalog = chain_catalog(tree, num_relations=2, rows=50, seed=1)
        plan = optimize(chain_query(2), tree, catalog)
        swapped = dict(catalog)
        swapped["R0"] = catalog["R1"]
        with pytest.raises(repro.PlanError):
            execute_plan(plan, tree, swapped, seed=0)


class TestReports:
    def test_plan_report_totals_and_roundtrip(self, tree):
        catalog = chain_catalog(
            tree, num_relations=3, rows=120, key_space=16, seed=9
        )
        report = execute_plan(
            optimize(chain_query(3), tree, catalog), tree, catalog, seed=1
        )
        assert report.cost == pytest.approx(
            sum(stage.cost for stage in report.stages)
        )
        assert report.rounds == sum(s.rounds for s in report.stages)
        rebuilt = PlanReport.from_dict(report.to_dict())
        assert rebuilt.cost == pytest.approx(report.cost)
        assert rebuilt.strategy == report.strategy
        assert rebuilt.output_rows == report.output_rows
        assert "plan on" in report.summarize()

    def test_run_plan_facade(self, tree):
        catalog = chain_catalog(
            tree, num_relations=3, rows=100, key_space=16, seed=4
        )
        query = chain_query(3)
        report = repro.run_plan(query, tree, catalog, seed=1)
        assert isinstance(report, PlanReport)
        report2, output = repro.run_plan(
            query, tree, catalog, seed=1, keep_output=True
        )
        assert report2.cost == pytest.approx(report.cost)
        assert output.multiset() == evaluate_reference(query, catalog)

    def test_stage_reports_carry_bounds(self, tree):
        catalog = chain_catalog(
            tree, num_relations=2, rows=200, key_space=16, seed=6
        )
        report = repro.run_plan(chain_query(2), tree, catalog, seed=2)
        (stage,) = report.stages
        assert stage.task == "equijoin"
        assert stage.lower_bound > 0
        assert stage.rounds == 1

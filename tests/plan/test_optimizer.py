"""Unit tests for join ordering, protocol choice and plan explain."""

import pytest

from repro.errors import PlanError
from repro.plan.logical import (
    Filter,
    GroupBy,
    Join,
    JoinCondition,
    Scan,
    chain_query,
    star_query,
)
from repro.plan.optimizer import optimize
from repro.plan.relation import chain_catalog, star_catalog
from repro.topology.builders import star, two_level


@pytest.fixture
def tree():
    return two_level([4, 4], leaf_bandwidth=[4.0, 1.0], uplink_bandwidth=2.0)


class TestCompilation:
    def test_chain_plan_shape(self, tree):
        catalog = chain_catalog(tree, num_relations=3, rows=200, seed=1)
        plan = optimize(chain_query(3), tree, catalog)
        kinds = [s.kind for s in plan.stages]
        assert kinds.count("scan") == 3
        assert kinds.count("join") == 2
        assert plan.output == len(plan.stages) - 1
        assert plan.estimated_cost > 0
        # every shuffle stage has a protocol and estimates
        for i in plan.shuffle_stages():
            assert plan.stages[i].protocol is not None

    def test_star_plan_merges_key(self, tree):
        catalog = star_catalog(tree, num_satellites=2, rows=200, seed=1)
        plan = optimize(star_query(2), tree, catalog)
        out = plan.output_schema.columns
        # one copy of the shared key plus one payload per relation
        assert sorted(out) == ["a0", "a1", "a2", "k"]

    def test_groupby_plan(self, tree):
        catalog = chain_catalog(tree, num_relations=2, rows=200, seed=1)
        query = GroupBy(chain_query(2), key="x2", value="x0", op="sum")
        plan = optimize(query, tree, catalog)
        assert plan.stages[plan.output].kind == "groupby"
        assert plan.output_schema.columns == ("x2", "sum_x0")

    def test_filter_is_local(self, tree):
        catalog = chain_catalog(tree, num_relations=2, rows=200, seed=1)
        query = Join(
            inputs=(Filter(Scan("R0"), "x0", "<=", 100), Scan("R1")),
            conditions=(JoinCondition(0, "x1", 1, "x1"),),
        )
        plan = optimize(query, tree, catalog)
        filters = [s for s in plan.stages if s.kind == "filter"]
        assert len(filters) == 1
        assert filters[0].est_cost == 0.0
        assert filters[0].protocol is None

    def test_nested_join_flattened(self, tree):
        catalog = chain_catalog(tree, num_relations=3, rows=150, seed=2)
        nested = Join(
            inputs=(
                Join(
                    inputs=(Scan("R0"), Scan("R1")),
                    conditions=(JoinCondition(0, "x1", 1, "x1"),),
                ),
                Scan("R2"),
            ),
            conditions=(JoinCondition(0, "x2", 1, "x2"),),
        )
        plan = optimize(nested, tree, catalog)
        assert len([s for s in plan.stages if s.kind == "join"]) == 2

    def test_unknown_relation(self, tree):
        with pytest.raises(PlanError):
            optimize(chain_query(3), tree, {})

    def test_unknown_strategy(self, tree):
        catalog = chain_catalog(tree, num_relations=2, rows=100, seed=1)
        with pytest.raises(PlanError):
            optimize(chain_query(2), tree, catalog, strategy="fastest")

    def test_disconnected_join_rejected(self, tree):
        catalog = chain_catalog(tree, num_relations=3, rows=100, seed=1)
        # R2 shares no condition with anything: every order leaves it
        # stranded, which must surface as a planning error, not a
        # silent cross product.
        query = Join(
            inputs=(Scan("R0"), Scan("R1"), Scan("R2")),
            conditions=(JoinCondition(0, "x1", 1, "x1"),),
        )
        with pytest.raises(PlanError):
            optimize(query, tree, catalog)


class TestStrategies:
    def test_gather_strategy_uses_gather_everywhere(self, tree):
        catalog = chain_catalog(tree, num_relations=3, rows=200, seed=1)
        plan = optimize(chain_query(3), tree, catalog, strategy="gather")
        for i in plan.shuffle_stages():
            assert plan.stages[i].protocol == "gather"

    def test_optimized_estimate_not_above_baselines(self, tree):
        catalog = chain_catalog(
            tree, num_relations=3, rows=300, seed=4, policy="zipf"
        )
        query = chain_query(3)
        optimized = optimize(query, tree, catalog)
        gather = optimize(query, tree, catalog, strategy="gather")
        worst = optimize(query, tree, catalog, strategy="worst-order")
        assert optimized.estimated_cost <= gather.estimated_cost + 1e-9
        assert optimized.estimated_cost <= worst.estimated_cost + 1e-9

    def test_worst_order_at_least_optimized(self, tree):
        catalog = chain_catalog(tree, num_relations=4, rows=200, seed=3)
        query = chain_query(4)
        optimized = optimize(query, tree, catalog)
        worst = optimize(query, tree, catalog, strategy="worst-order")
        assert worst.estimated_cost >= optimized.estimated_cost - 1e-9

    def test_explain_renders(self, tree):
        catalog = chain_catalog(tree, num_relations=3, rows=150, seed=1)
        plan = optimize(chain_query(3), tree, catalog)
        text = plan.explain()
        assert "optimized plan" in text
        assert "join" in text
        assert "est cost" in text

"""Tests for the compiled-plan cache (repro.plan.optimizer.PlanCache)."""

import pytest

import repro
from repro.obs.metrics import collecting
from repro.plan import (
    PlanCache,
    chain_catalog,
    chain_query,
    optimize,
    star_catalog,
    star_query,
)
from repro.topology.builders import two_level


@pytest.fixture(scope="module")
def tree():
    return two_level([3, 3], uplink_bandwidth=2.0)


@pytest.fixture(scope="module")
def catalog(tree):
    return chain_catalog(tree, num_relations=3, rows=200, seed=0)


class TestKeys:
    def test_repeat_compile_hits(self, tree, catalog):
        cache = PlanCache()
        query = chain_query(3)
        first = optimize(query, tree, catalog, cache=cache)
        second = optimize(query, tree, catalog, cache=cache)
        assert second is first  # shared by reference, not recompiled
        assert cache.stats() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "rejected": 0,
        }

    def test_renamed_tree_hits(self, catalog, tree):
        # same structure, different label: plans are shared
        renamed = two_level([3, 3], uplink_bandwidth=2.0, name="replica")
        renamed_catalog = chain_catalog(
            renamed, num_relations=3, rows=200, seed=0
        )
        cache = PlanCache()
        query = chain_query(3)
        key_a = cache.key(query, tree, catalog, "optimized")
        key_b = cache.key(query, renamed, renamed_catalog, "optimized")
        assert key_a == key_b

    def test_moved_data_misses(self, tree):
        # same shape, same topology — but the placement changed
        cache = PlanCache()
        query = chain_query(3)
        here = chain_catalog(tree, num_relations=3, rows=200, seed=0)
        there = chain_catalog(tree, num_relations=3, rows=200, seed=9)
        assert cache.key(query, tree, here, "optimized") != cache.key(
            query, tree, there, "optimized"
        )

    def test_different_shape_misses(self, tree, catalog):
        cache = PlanCache()
        assert cache.key(chain_query(3), tree, catalog, "optimized") != (
            cache.key(chain_query(2), tree, catalog, "optimized")
        )

    def test_strategy_is_part_of_the_key(self, tree, catalog):
        cache = PlanCache()
        query = chain_query(3)
        optimize(query, tree, catalog, cache=cache)
        plan = optimize(query, tree, catalog, strategy="gather", cache=cache)
        assert plan.strategy == "gather"
        assert cache.hits == 0
        assert cache.misses == 2

    def test_relation_digest_is_memoized(self, tree, catalog):
        cache = PlanCache()
        query = chain_query(3)
        cache.key(query, tree, catalog, "optimized")
        digests = dict(cache._relation_digests)
        cache.key(query, tree, catalog, "optimized")
        assert dict(cache._relation_digests) == digests


class TestAdmission:
    def test_expensive_baseline_rejected(self, tree, catalog):
        cache = PlanCache(admit_ratio=1.0)
        query = chain_query(3)
        optimized = optimize(query, tree, catalog, cache=cache)
        gather = optimize(query, tree, catalog, strategy="gather", cache=cache)
        # sanity: the diagnostic plan really is costlier than optimal
        assert gather.estimated_cost > optimized.estimated_cost
        assert cache.rejected == 1
        # the rejected plan was still returned, just not cached
        assert gather.strategy == "gather"
        again = optimize(query, tree, catalog, strategy="gather", cache=cache)
        assert again is not gather
        assert cache.misses == 3

    def test_generous_ratio_admits_baselines(self, tree, catalog):
        cache = PlanCache(admit_ratio=1e9)
        query = chain_query(3)
        optimize(query, tree, catalog, cache=cache)
        optimize(query, tree, catalog, strategy="gather", cache=cache)
        assert cache.rejected == 0
        assert len(cache) == 2

    def test_baseline_without_optimized_sibling_admitted(self, tree, catalog):
        # no optimized estimate to gate against: admit
        cache = PlanCache(admit_ratio=1.0)
        optimize(chain_query(3), tree, catalog, strategy="gather", cache=cache)
        assert cache.rejected == 0
        assert len(cache) == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PlanCache(0)
        with pytest.raises(ValueError):
            PlanCache(admit_ratio=0.5)


class TestLru:
    def test_eviction_bounds_entries(self, tree, catalog):
        cache = PlanCache(max_entries=2)
        star_cat = dict(catalog)
        star_cat.update(star_catalog(tree, num_satellites=2, seed=1))
        for query in (chain_query(3), chain_query(2), star_query(2)):
            optimize(query, tree, star_cat, cache=cache)
        assert len(cache) == 2
        # the oldest entry was evicted
        optimize(chain_query(3), tree, star_cat, cache=cache)
        assert cache.hits == 0
        assert cache.misses == 4

    def test_lookup_touches_lru_order(self, tree):
        catalog = chain_catalog(tree, num_relations=4, rows=200, seed=0)
        cache = PlanCache(max_entries=2)
        optimize(chain_query(3), tree, catalog, cache=cache)
        optimize(chain_query(2), tree, catalog, cache=cache)
        optimize(chain_query(3), tree, catalog, cache=cache)  # touch
        optimize(chain_query(4), tree, catalog, cache=cache)  # evicts 2-chain
        assert optimize(chain_query(3), tree, catalog, cache=cache)
        assert cache.hits == 2


class TestCounters:
    def test_hits_and_misses_labeled_by_strategy(self, tree, catalog):
        cache = PlanCache(admit_ratio=1.0)
        query = chain_query(3)
        with collecting() as registry:
            optimize(query, tree, catalog, cache=cache)
            optimize(query, tree, catalog, cache=cache)
            optimize(query, tree, catalog, strategy="gather", cache=cache)
        counters = registry.snapshot()["counters"]
        assert counters["repro_plan_cache_misses_total"] == {
            "strategy=optimized": 1,
            "strategy=gather": 1,
        }
        assert counters["repro_plan_cache_hits_total"] == {
            "strategy=optimized": 1
        }
        assert counters["repro_plan_cache_rejected_total"] == {
            "strategy=gather": 1
        }


class TestEngineWiring:
    def test_run_plan_accepts_plan_cache(self, tree, catalog):
        cache = PlanCache()
        query = chain_query(3)
        cold = repro.run_plan(query, tree, catalog)
        first = repro.run_plan(query, tree, catalog, plan_cache=cache)
        warm = repro.run_plan(query, tree, catalog, plan_cache=cache)
        assert cache.hits == 1
        assert warm.cost == cold.cost == first.cost
        assert warm.rounds == cold.rounds

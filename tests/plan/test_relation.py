"""Unit tests for schemas, packed relations and catalog generators."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.plan.relation import (
    PlacedRelation,
    Schema,
    chain_catalog,
    random_placed_relation,
    star_catalog,
)
from repro.topology.builders import star, two_level


class TestSchema:
    def test_pack_unpack_roundtrip(self):
        schema = Schema(("a", "b", "c"), (10, 12, 8))
        rows = np.array([[1, 2, 3], [1023, 4095, 255], [0, 0, 0]])
        packed = schema.pack(rows)
        assert packed.shape == (3,)
        assert np.array_equal(schema.unpack(packed), rows)

    def test_pack_rejects_out_of_range(self):
        schema = Schema(("a", "b"), (4, 4))
        with pytest.raises(PlanError):
            schema.pack(np.array([[16, 0]]))
        with pytest.raises(PlanError):
            schema.pack(np.array([[0, -1]]))

    def test_too_wide_rejected(self):
        with pytest.raises(PlanError):
            Schema(("a", "b"), (40, 30))

    def test_duplicate_columns_rejected(self):
        with pytest.raises(PlanError):
            Schema(("a", "a"), (4, 4))

    def test_drop(self):
        schema = Schema(("a", "b", "c"), (4, 5, 6))
        dropped = schema.drop("b")
        assert dropped.columns == ("a", "c")
        assert dropped.bits == (4, 6)
        with pytest.raises(PlanError):
            Schema(("a",), (4,)).drop("a")

    def test_index_unknown_column(self):
        with pytest.raises(PlanError):
            Schema(("a",), (4,)).index("z")


class TestPlacedRelation:
    def _relation(self):
        schema = Schema(("k", "v"), (8, 8))
        return PlacedRelation(
            schema,
            {
                "n1": np.array([[1, 10], [2, 20]]),
                "n2": np.array([[3, 30]]),
            },
        )

    def test_sizes_and_rows(self):
        rel = self._relation()
        assert rel.total_rows == 3
        assert rel.size("n1") == 2
        assert rel.size("missing") == 0
        assert sorted(map(tuple, rel.rows().tolist())) == [
            (1, 10), (2, 20), (3, 30)
        ]

    def test_multiset_sorts_columns_by_name(self):
        schema = Schema(("z", "a"), (8, 8))
        rel = PlacedRelation(schema, {"n": np.array([[5, 7]])})
        # canonical order is (a, z)
        assert rel.multiset() == {(7, 5): 1}

    def test_filter(self):
        rel = self._relation()
        kept = rel.filter("k", ">=", 2)
        assert kept.total_rows == 2
        assert kept.size("n1") == 1
        with pytest.raises(PlanError):
            rel.filter("k", "~", 2)

    def test_key_payload_roundtrip(self):
        rel = self._relation()
        encoded, payload_schema, bits = rel.key_payload("k")
        assert payload_schema.columns == ("v",)
        assert bits == 8
        keys = encoded["n1"] >> bits
        assert sorted(keys.tolist()) == [1, 2]

    def test_key_payload_shared_width(self):
        rel = self._relation()
        encoded, _, bits = rel.key_payload("k", payload_bits=20)
        assert bits == 20
        assert (encoded["n2"] >> 20).tolist() == [3]

    def test_key_payload_rejects_narrow_budget(self):
        rel = self._relation()
        with pytest.raises(PlanError):
            rel.key_payload("k", payload_bits=4)

    def test_fragment_shape_validated(self):
        schema = Schema(("a", "b"), (4, 4))
        with pytest.raises(PlanError):
            PlacedRelation(schema, {"n": np.zeros((2, 3), dtype=np.int64)})


class TestCatalogs:
    def test_chain_catalog_shape(self):
        tree = star(4)
        catalog = chain_catalog(tree, num_relations=3, rows=50, seed=1)
        assert sorted(catalog) == ["R0", "R1", "R2"]
        assert catalog["R1"].schema.columns == ("x1", "x2")
        assert catalog["R1"].total_rows == 50

    def test_star_catalog_shape(self):
        tree = two_level([2, 2])
        catalog = star_catalog(tree, num_satellites=2, rows=40, seed=1)
        assert sorted(catalog) == ["D1", "D2", "F"]
        assert catalog["F"].schema.columns == ("k", "a0")
        assert catalog["D2"].schema.columns == ("k", "a2")

    def test_policies_place_all_rows(self):
        tree = star(5, bandwidth=[1, 2, 4, 2, 1])
        schema = Schema(("k", "v"), (10, 10))
        for policy in ("uniform", "zipf", "single-heavy", "proportional"):
            rel = random_placed_relation(
                tree, schema, rows=99, key_space=100, seed=3, policy=policy
            )
            assert rel.total_rows == 99

    def test_key_space_must_fit_columns(self):
        tree = star(3)
        with pytest.raises(PlanError):
            chain_catalog(tree, rows=10, key_space=5000, column_bits=10)

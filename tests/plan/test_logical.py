"""Unit tests for the logical algebra and its reference semantics."""

from collections import Counter

import numpy as np
import pytest

from repro.errors import PlanError
from repro.plan.logical import (
    Filter,
    GroupBy,
    Join,
    JoinCondition,
    Scan,
    chain_query,
    evaluate_reference,
    star_query,
)
from repro.plan.relation import PlacedRelation, Schema
from repro.topology.builders import star


def _catalog():
    tree = star(2)
    nodes = sorted(tree.compute_nodes, key=str)
    r0 = PlacedRelation(
        Schema(("x0", "x1"), (8, 8)),
        {nodes[0]: np.array([[1, 5], [2, 6], [3, 5]])},
    )
    r1 = PlacedRelation(
        Schema(("x1", "x2"), (8, 8)),
        {nodes[1]: np.array([[5, 9], [5, 8], [7, 9]])},
    )
    return {"R0": r0, "R1": r1}


class TestValidation:
    def test_join_needs_two_inputs(self):
        with pytest.raises(PlanError):
            Join(inputs=(Scan("R0"),), conditions=())

    def test_join_needs_conditions(self):
        with pytest.raises(PlanError):
            Join(inputs=(Scan("R0"), Scan("R1")), conditions=())

    def test_condition_must_span_two_inputs(self):
        with pytest.raises(PlanError):
            JoinCondition(0, "a", 0, "b")

    def test_condition_index_in_range(self):
        with pytest.raises(PlanError):
            Join(
                inputs=(Scan("R0"), Scan("R1")),
                conditions=(JoinCondition(0, "a", 5, "b"),),
            )

    def test_filter_op_validated(self):
        with pytest.raises(PlanError):
            Filter(Scan("R0"), "x0", "~=", 3)

    def test_groupby_op_validated(self):
        with pytest.raises(PlanError):
            GroupBy(Scan("R0"), key="x0", value="x1", op="median")

    def test_groupby_key_value_distinct(self):
        with pytest.raises(PlanError):
            GroupBy(Scan("R0"), key="x0", value="x0")

    def test_builders_validate_sizes(self):
        with pytest.raises(PlanError):
            chain_query(1)
        with pytest.raises(PlanError):
            star_query(0)


class TestReference:
    def test_scan(self):
        ref = evaluate_reference(Scan("R0"), _catalog())
        assert ref == Counter({(1, 5): 1, (2, 6): 1, (3, 5): 1})

    def test_missing_relation(self):
        with pytest.raises(PlanError):
            evaluate_reference(Scan("nope"), _catalog())

    def test_filter(self):
        ref = evaluate_reference(
            Filter(Scan("R0"), "x1", "==", 5), _catalog()
        )
        assert ref == Counter({(1, 5): 1, (3, 5): 1})

    def test_join(self):
        query = Join(
            inputs=(Scan("R0"), Scan("R1")),
            conditions=(JoinCondition(0, "x1", 1, "x1"),),
        )
        ref = evaluate_reference(query, _catalog())
        # keys 1 and 3 match x1=5 twice each; columns sorted (x0, x1, x2)
        assert ref == Counter(
            {
                (1, 5, 9): 1,
                (1, 5, 8): 1,
                (3, 5, 9): 1,
                (3, 5, 8): 1,
            }
        )

    def test_groupby_over_join(self):
        query = GroupBy(
            Join(
                inputs=(Scan("R0"), Scan("R1")),
                conditions=(JoinCondition(0, "x1", 1, "x1"),),
            ),
            key="x2",
            value="x0",
            op="sum",
        )
        ref = evaluate_reference(query, _catalog())
        # x2=9 rows have x0 in {1, 3}; x2=8 rows too.  Output columns
        # sort alphabetically, so (sum_x0, x2).
        assert ref == Counter({(4, 8): 1, (4, 9): 1})

    def test_count_min_max(self):
        catalog = _catalog()
        # Output columns sort alphabetically: (op_x0, x1).
        for op, expected in (
            ("count", {(2, 5): 1, (1, 6): 1}),
            ("min", {(1, 5): 1, (2, 6): 1}),
            ("max", {(3, 5): 1, (2, 6): 1}),
        ):
            ref = evaluate_reference(
                GroupBy(Scan("R0"), key="x1", value="x0", op=op), catalog
            )
            assert ref == Counter(expected), op

    def test_disconnected_join_rejected(self):
        catalog = _catalog()
        catalog["R2"] = PlacedRelation(
            Schema(("y", "z"), (8, 8)), {}
        )
        query = Join(
            inputs=(Scan("R0"), Scan("R1"), Scan("R2")),
            conditions=(JoinCondition(0, "x1", 1, "x1"),),
        )
        with pytest.raises(PlanError):
            evaluate_reference(query, catalog)

    def test_chain_query_shape(self):
        query = chain_query(3)
        assert len(query.inputs) == 3
        assert len(query.conditions) == 2
        assert query.describe().startswith("join(")

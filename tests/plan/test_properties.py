"""Property tests: the planner always computes the reference answer.

For random 3-relation chain and star queries — random topologies,
random fragment placements, random key skew, every strategy — the
executed plan's output multiset must equal a naive single-machine
evaluation of the same logical plan.  This is the planner's contract:
join order, protocol choice and intermediate materialization may vary
freely, the answer may not.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan.executor import execute_plan
from repro.plan.logical import (
    GroupBy,
    chain_query,
    evaluate_reference,
    star_query,
)
from repro.plan.optimizer import STRATEGIES, optimize
from repro.plan.relation import PlacedRelation, Schema

from tests.strategies import tree_topologies

KEY_BITS = 6  # tiny domain => plenty of join matches and key collisions


@st.composite
def placed_relation(draw, tree, columns, *, max_rows: int = 40):
    """A random 2-column relation scattered over the compute nodes."""
    computes = sorted(tree.compute_nodes, key=str)
    schema = Schema(columns, (KEY_BITS, KEY_BITS))
    fragments = {}
    for node in computes:
        count = draw(st.integers(0, max_rows // len(computes) + 2))
        seed = draw(st.integers(0, 2**16))
        rng = np.random.default_rng(seed)
        fragments[node] = rng.integers(
            0, 1 << KEY_BITS, size=(count, 2), dtype=np.int64
        )
    return PlacedRelation(schema, fragments)


@st.composite
def chain_instances(draw):
    tree = draw(tree_topologies(min_nodes=3, max_nodes=9))
    catalog = {
        f"R{i}": draw(
            placed_relation(tree, (f"x{i}", f"x{i + 1}"))
        )
        for i in range(3)
    }
    return tree, catalog


@st.composite
def star_instances(draw):
    tree = draw(tree_topologies(min_nodes=3, max_nodes=9))
    catalog = {"F": draw(placed_relation(tree, ("k", "a0")))}
    for i in (1, 2):
        catalog[f"D{i}"] = draw(placed_relation(tree, ("k", f"a{i}")))
    return tree, catalog


@settings(max_examples=20, deadline=None)
@given(instance=chain_instances(), run_seed=st.integers(0, 2**16))
def test_chain_query_matches_reference(instance, run_seed):
    tree, catalog = instance
    query = chain_query(3)
    reference = evaluate_reference(query, catalog)
    plan = optimize(query, tree, catalog)
    _, output = execute_plan(
        plan, tree, catalog, seed=run_seed, keep_output=True
    )
    assert output.multiset() == reference


@settings(max_examples=20, deadline=None)
@given(instance=star_instances(), run_seed=st.integers(0, 2**16))
def test_star_query_matches_reference(instance, run_seed):
    tree, catalog = instance
    query = star_query(2)
    reference = evaluate_reference(query, catalog)
    plan = optimize(query, tree, catalog)
    _, output = execute_plan(
        plan, tree, catalog, seed=run_seed, keep_output=True
    )
    assert output.multiset() == reference


@settings(max_examples=10, deadline=None)
@given(instance=chain_instances(), run_seed=st.integers(0, 2**16))
def test_every_strategy_agrees(instance, run_seed):
    tree, catalog = instance
    query = chain_query(3)
    reference = evaluate_reference(query, catalog)
    for strategy in STRATEGIES:
        plan = optimize(query, tree, catalog, strategy=strategy)
        _, output = execute_plan(
            plan, tree, catalog, seed=run_seed, keep_output=True
        )
        assert output.multiset() == reference, strategy


@settings(max_examples=10, deadline=None)
@given(
    instance=star_instances(),
    run_seed=st.integers(0, 2**16),
    op=st.sampled_from(["sum", "count", "min", "max"]),
)
def test_aggregate_over_join_matches_reference(instance, run_seed, op):
    tree, catalog = instance
    query = GroupBy(star_query(2), key="k", value="a1", op=op)
    reference = evaluate_reference(query, catalog)
    plan = optimize(query, tree, catalog)
    _, output = execute_plan(
        plan, tree, catalog, seed=run_seed, keep_output=True
    )
    assert output.multiset() == reference

"""Unit tests for the planner's cost and cardinality estimators."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.plan.cost import (
    CostModel,
    RelationStats,
    estimate_gather_cost,
    estimate_tree_cost,
    estimate_uniform_hash_cost,
    filter_stats,
    groupby_stats,
    join_stats,
    stats_of,
)
from repro.plan.relation import PlacedRelation, Schema
from repro.topology.builders import star, two_level


def _stats(rows, distinct, profile):
    return RelationStats(rows=rows, distinct=distinct, profile=profile)


class TestCardinality:
    def test_stats_of_exact(self):
        schema = Schema(("k", "v"), (8, 8))
        rel = PlacedRelation(
            schema,
            {"a": np.array([[1, 1], [1, 2]]), "b": np.array([[2, 1]])},
        )
        stats = stats_of(rel)
        assert stats.rows == 3
        assert stats.distinct == {"k": 2, "v": 2}
        assert stats.profile == {"a": 2.0, "b": 1.0}

    def test_join_independence_estimate(self):
        left = _stats(100, {"k": 10}, {})
        right = _stats(200, {"k": 20}, {})
        out = join_stats(left, right, [("k", "k")], ["k"])
        assert out.rows == pytest.approx(100 * 200 / 20)
        assert out.distinct["k"] <= 10

    def test_join_empty_side(self):
        left = _stats(0, {"k": 1}, {})
        right = _stats(50, {"k": 5}, {})
        assert join_stats(left, right, [("k", "k")], []).rows == 0.0

    def test_filter_selectivities(self):
        stats = _stats(90, {"k": 9, "v": 30}, {"a": 90.0})
        eq = filter_stats(stats, "k", "==")
        assert eq.rows == pytest.approx(10)
        assert eq.distinct["k"] == 1.0
        assert eq.profile["a"] == pytest.approx(10)
        ne = filter_stats(stats, "k", "!=")
        assert ne.rows == pytest.approx(80)
        rng = filter_stats(stats, "k", "<=")
        assert rng.rows == pytest.approx(30)

    def test_groupby_stats(self):
        stats = _stats(1000, {"k": 40}, {})
        assert groupby_stats(stats, "k").rows == 40


class TestShuffleEstimates:
    def test_gather_exact_on_star(self):
        tree = star(4, bandwidth=[1.0, 1.0, 1.0, 1.0])
        nodes = sorted(tree.compute_nodes, key=str)
        profile = {nodes[0]: 90.0, nodes[1]: 10.0, nodes[2]: 10.0,
                   nodes[3]: 10.0}
        cost, target = estimate_gather_cost(tree, [profile])
        assert target == nodes[0]
        # heaviest inbound link carries all of the target's arrivals
        assert cost == pytest.approx(30.0)

    def test_uniform_hash_expectation_positive(self):
        tree = two_level([2, 2], uplink_bandwidth=1.0)
        nodes = tree.left_to_right_compute_order()
        profile = {n: 25.0 for n in nodes}
        cost = estimate_uniform_hash_cost(tree, [profile])
        assert cost > 0

    def test_tree_estimate_at_least_bound(self):
        tree = star(4, bandwidth=[1.0, 2.0, 4.0, 8.0])
        nodes = tree.left_to_right_compute_order()
        r = {n: 50.0 for n in nodes}
        s = {n: 50.0 for n in nodes}
        est = estimate_tree_cost(tree, [r, s])
        # the per-link bound on the slowest leaf: its own data must move
        # or be joined against, min(totals, sides)/w >= 100/1
        assert est >= 100.0

    def test_tree_estimate_zero_when_empty(self):
        tree = star(3)
        assert estimate_tree_cost(tree, [{}, {}]) == 0.0

    def test_concentrated_data_makes_tree_cheap(self):
        tree = star(4, bandwidth=[1.0, 1.0, 1.0, 1.0])
        nodes = tree.left_to_right_compute_order()
        concentrated = [{nodes[0]: 100.0}, {nodes[0]: 100.0}]
        spread = [
            {n: 25.0 for n in nodes},
            {n: 25.0 for n in nodes},
        ]
        assert estimate_tree_cost(tree, concentrated) < estimate_tree_cost(
            tree, spread
        )


class TestCostModel:
    def test_join_stage_profiles(self):
        tree = star(4)
        model = CostModel(tree)
        nodes = tree.left_to_right_compute_order()
        left = _stats(100, {}, {nodes[0]: 100.0})
        right = _stats(100, {}, {n: 25.0 for n in nodes})
        cost, profile = model.join_stage(left, right, "gather", 500.0)
        assert sum(profile.values()) == pytest.approx(500.0)
        # gather leaves everything on one node
        assert len([v for v in profile.values() if v > 0]) == 1
        _, uniform = model.join_stage(left, right, "uniform-hash", 500.0)
        assert all(v == pytest.approx(125.0) for v in uniform.values())

    def test_unknown_protocol_rejected(self):
        model = CostModel(star(3))
        with pytest.raises(PlanError):
            model.join_stage(_stats(1, {}, {}), _stats(1, {}, {}), "bogus", 1)
        with pytest.raises(PlanError):
            model.groupby_stage(_stats(1, {}, {}), 1, "bogus")

    def test_supported_protocols_exact_first(self):
        model = CostModel(star(3))
        assert model.supported_protocols("join")[0] == "gather"

"""Tests for the triangle-count task compiled through the planner."""

import numpy as np
import pytest

import repro
from repro.errors import ProtocolError
from repro.graphs import (
    PlacedGraph,
    reference_triangle_count,
    run_triangles,
    triangle_catalog,
    triangle_query,
    triangles_lower_bound,
)
from repro.graphs.model import encode_edges
from repro.data.distribution import Distribution
from repro.topology.builders import star, two_level

PROTOCOLS = ("optimized", "tree", "uniform-hash", "gather")


@pytest.fixture
def instance():
    tree = two_level([3, 3], leaf_bandwidth=[4.0, 1.0], uplink_bandwidth=2.0)
    edges = repro.gnm_random_graph(60, 240, seed=11)
    graph = PlacedGraph.from_edges(tree, edges, policy="proportional", seed=12)
    return tree, graph


class TestCorrectness:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_count_matches_reference(self, instance, protocol):
        tree, graph = instance
        report = run_triangles(tree, graph, protocol=protocol, seed=13)
        expected = reference_triangle_count(graph.edges())
        assert expected > 0  # the instance is dense enough to be interesting
        assert report.meta["num_triangles"] == expected

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_triangle_free_graph(self, protocol):
        tree = star(3)
        chain = np.stack(
            [np.arange(0, 10), np.arange(1, 11)], axis=1
        ).astype(np.int64)
        graph = PlacedGraph.from_edges(tree, chain)
        report = run_triangles(tree, graph, protocol=protocol)
        assert report.meta["num_triangles"] == 0

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_empty_graph(self, protocol):
        tree = star(3)
        empty = Distribution({node: {"E": []} for node in tree.compute_nodes})
        report = run_triangles(tree, empty, protocol=protocol)
        assert report.cost == 0
        assert report.meta["num_triangles"] == 0

    def test_orientation_of_placed_fragments_is_irrelevant(self):
        # fragments may store (hi, lo); the catalog canonicalizes locally
        tree = star(2)
        nodes = sorted(tree.compute_nodes, key=str)
        dist = Distribution(
            {
                nodes[0]: {"E": encode_edges([2, 1], [0, 0])},
                nodes[1]: {"E": encode_edges([2], [1])},
            }
        )
        report = run_triangles(tree, dist, protocol="gather")
        assert report.meta["num_triangles"] == 1


class TestCompilation:
    def test_two_equijoin_stages(self, instance):
        tree, graph = instance
        report = run_triangles(tree, graph, protocol="tree", seed=13)
        joins = [
            step for step in report.supersteps if step.task == "equijoin"
        ]
        assert len(joins) == 2
        assert all(step.protocol == "tree-equijoin" for step in joins)

    def test_catalog_schemas_share_columns(self, instance):
        tree, graph = instance
        catalog = triangle_catalog(tree, graph.distribution)
        assert tuple(catalog["E1"].schema.columns) == ("a", "b")
        assert tuple(catalog["E2"].schema.columns) == ("b", "c")
        assert tuple(catalog["E3"].schema.columns) == ("a", "c")
        assert (
            catalog["E1"].total_rows
            == catalog["E2"].total_rows
            == graph.num_edges
        )

    def test_query_is_the_cyclic_join(self):
        query = triangle_query()
        described = query.describe()
        assert "E1" in described and "E2" in described and "E3" in described


class TestEngineIntegration:
    def test_registered_with_default(self):
        spec = repro.get_task("triangles")
        assert spec.name == "triangle-count"
        assert spec.default_protocol == "optimized"
        names = set(repro.protocols_for("triangle-count"))
        assert {"optimized", "tree", "uniform-hash", "gather"} <= names

    def test_engine_run_reports_bound(self, instance):
        tree, graph = instance
        report = repro.run("triangle-count", tree, graph.distribution, seed=3)
        assert report.lower_bound > 0
        assert report.cost >= report.lower_bound

    def test_verifier_rejects_duplicate_edges(self):
        tree = star(2)
        nodes = sorted(tree.compute_nodes, key=str)
        dup = Distribution(
            {
                nodes[0]: {"E": encode_edges([0], [1])},
                nodes[1]: {"E": encode_edges([1], [0])},
            }
        )
        with pytest.raises(ProtocolError):
            repro.run("triangle-count", tree, dup, protocol="gather")


class TestCostModel:
    def test_optimized_never_worse_than_pinned_flavours(self, instance):
        tree, graph = instance
        reports = {
            protocol: run_triangles(tree, graph, protocol=protocol, seed=4)
            for protocol in PROTOCOLS
        }
        # optimized picks per-stage protocols by estimate; it must at
        # least match the uniform-hash baseline on this skewed topology
        assert reports["optimized"].cost <= reports["uniform-hash"].cost

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_cost_at_least_lower_bound(self, instance, protocol):
        tree, graph = instance
        report = run_triangles(tree, graph, protocol=protocol, seed=4)
        assert report.cost >= report.lower_bound

    def test_bound_counts_shared_vertices(self):
        # one vertex (1) has edges on both sides of the 0.5-uplink; the
        # bound is |shared| / (2 w) = 1 / (2 * 0.5)
        tree = two_level([1, 1], uplink_bandwidth=0.5, name="pair")
        nodes = sorted(tree.compute_nodes, key=str)
        dist = Distribution(
            {
                nodes[0]: {"E": encode_edges([0], [1])},
                nodes[1]: {"E": encode_edges([1], [2])},
            }
        )
        bound = triangles_lower_bound(tree, dist)
        assert bound.value == pytest.approx(1 / (2 * 0.5))

"""Tests for the superstep driver and the group-by graph helpers."""

import numpy as np
import pytest

import repro
from repro.graphs import (
    PlacedGraph,
    SuperstepDriver,
    incidence_distribution,
    run_degrees,
    run_neighborhood_aggregate,
)
from repro.errors import ProtocolError
from repro.topology.builders import star, two_level


@pytest.fixture
def instance():
    tree = two_level([2, 2], leaf_bandwidth=[4.0, 1.0], uplink_bandwidth=2.0)
    edges = repro.gnm_random_graph(40, 90, seed=21)
    graph = PlacedGraph.from_edges(tree, edges, policy="zipf", seed=22)
    return tree, graph


class TestSuperstepDriver:
    def test_absorbed_cost_equals_inner_cost(self, instance):
        tree, graph = instance
        driver = SuperstepDriver(tree)
        dist = incidence_distribution(graph, values="ones")
        result = driver.protocol_step(
            "groupby-aggregate",
            dist,
            label="step 1",
            protocol="tree",
            seed=1,
            op="count",
            payload_bits=20,
        )
        assert driver.total_cost == pytest.approx(result.cost)
        assert driver.num_rounds == result.rounds
        # round boundaries preserved: per-round costs match too
        for i in range(result.rounds):
            assert driver.ledger.round_cost(i) == pytest.approx(
                result.ledger.round_cost(i)
            )

    def test_steps_accumulate_in_order(self, instance):
        tree, graph = instance
        driver = SuperstepDriver(tree)
        dist = incidence_distribution(graph, values="ones")
        driver.protocol_step(
            "groupby-aggregate", dist, label="first", protocol="tree",
            op="count", payload_bits=20,
        )
        computes = sorted(tree.compute_nodes, key=str)
        with driver.cluster_round(
            task="demo", protocol="raw", label="second", input_size=3
        ) as ctx:
            ctx.send(computes[0], computes[1], [1, 2, 3], tag="demo.recv")
        labels = [step.placement for step in driver.steps]
        assert labels == ["first", "second"]
        assert driver.steps[1].input_size == 3
        assert driver.steps[1].cost > 0
        assert driver.num_rounds == 2
        received = driver.cluster.take(computes[1], "demo.recv")
        assert received.tolist() == [1, 2, 3]

    def test_set_last_input_size(self, instance):
        tree, _ = instance
        driver = SuperstepDriver(tree)
        computes = sorted(tree.compute_nodes, key=str)
        with driver.cluster_round(
            task="demo", protocol="raw", label="round"
        ) as ctx:
            ctx.send(computes[0], computes[1], [7], tag="x")
        driver.set_last_input_size(41)
        assert driver.steps[-1].input_size == 41

    def test_report_packages_totals(self, instance):
        tree, graph = instance
        driver = SuperstepDriver(tree)
        driver.protocol_step(
            "groupby-aggregate",
            incidence_distribution(graph, values="ones"),
            label="only",
            protocol="tree",
            op="count",
            payload_bits=20,
        )
        report = driver.report(
            task="demo-task",
            protocol="demo",
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
        )
        assert report.cost == pytest.approx(driver.total_cost)
        assert report.num_supersteps == 1
        assert report.converged


class TestDegrees:
    def test_degree_counts_match_reference(self, instance):
        tree, graph = instance
        from repro.engine import run_with_result

        _, result = run_with_result(
            "groupby-aggregate",
            tree,
            incidence_distribution(graph, values="ones"),
            op="count",
            payload_bits=20,
        )
        found = {}
        for groups in result.outputs.values():
            found.update(groups)
        expected = repro.graphs.reference_degrees(
            graph.edges(), num_vertices=graph.num_vertices
        )
        assert found == {
            v: int(expected[v]) for v in range(len(expected)) if expected[v]
        }

    def test_run_degrees_is_a_groupby_run(self, instance):
        tree, graph = instance
        report = run_degrees(tree, graph, seed=1)
        assert report.task == "groupby-aggregate"
        assert report.cost >= report.lower_bound >= 0

    def test_neighborhood_min_is_hash_to_min_round(self, instance):
        tree, graph = instance
        from repro.engine import run_with_result

        _, result = run_with_result(
            "groupby-aggregate",
            tree,
            incidence_distribution(graph, values="neighbour"),
            op="min",
            payload_bits=20,
        )
        found = {}
        for groups in result.outputs.values():
            found.update(groups)
        edges = graph.edges()
        for vertex, smallest in found.items():
            mask = (edges[:, 0] == vertex) | (edges[:, 1] == vertex)
            neighbours = np.setdiff1d(edges[mask].ravel(), [vertex])
            assert smallest == neighbours.min()

    def test_neighborhood_rejects_unknown_op(self, instance):
        tree, graph = instance
        with pytest.raises(ProtocolError):
            run_neighborhood_aggregate(tree, graph, op="median")

    def test_neighborhood_sum_uses_wide_payload(self):
        # sums of neighbour ids exceed the 20-bit vertex width; the
        # helper must widen the payload instead of overflowing
        tree = star(2)
        hub = 0
        spokes = np.arange(1, 40, dtype=np.int64)
        edges = np.stack([np.full_like(spokes, hub), spokes], axis=1)
        graph = PlacedGraph.from_edges(tree, edges)
        report = run_neighborhood_aggregate(tree, graph, op="sum")
        assert report.cost >= 0

"""Tests for the single-machine graph references."""

import numpy as np

from repro.graphs import (
    reference_components,
    reference_degrees,
    reference_triangle_count,
)


class TestReferenceComponents:
    def test_empty(self):
        assert reference_components(np.empty((0, 2), np.int64)) == {}

    def test_two_components(self):
        edges = np.array([[1, 2], [2, 3], [7, 9]], dtype=np.int64)
        labels = reference_components(edges)
        assert labels == {1: 1, 2: 1, 3: 1, 7: 7, 9: 7}

    def test_label_is_component_minimum(self):
        edges = np.array([[5, 4], [4, 9], [9, 0]], dtype=np.int64)
        labels = reference_components(edges)
        assert set(labels.values()) == {0}

    def test_chain(self):
        chain = np.stack(
            [np.arange(0, 50), np.arange(1, 51)], axis=1
        ).astype(np.int64)
        labels = reference_components(chain)
        assert all(label == 0 for label in labels.values())
        assert len(labels) == 51


class TestReferenceTriangles:
    def test_no_triangle(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]], dtype=np.int64)
        assert reference_triangle_count(edges) == 0

    def test_single_triangle_any_orientation(self):
        edges = np.array([[2, 0], [0, 1], [1, 2]], dtype=np.int64)
        assert reference_triangle_count(edges) == 1

    def test_complete_graph(self):
        n = 7
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        edges = np.array(pairs, dtype=np.int64)
        assert reference_triangle_count(edges) == n * (n - 1) * (n - 2) // 6

    def test_duplicate_edges_count_once(self):
        edges = np.array(
            [[0, 1], [1, 0], [1, 2], [0, 2]], dtype=np.int64
        )
        assert reference_triangle_count(edges) == 1


class TestReferenceDegrees:
    def test_counts_both_endpoints(self):
        edges = np.array([[0, 1], [1, 2]], dtype=np.int64)
        assert reference_degrees(edges).tolist() == [1, 2, 1]

    def test_explicit_vertex_space(self):
        edges = np.array([[0, 1]], dtype=np.int64)
        assert reference_degrees(edges, num_vertices=4).tolist() == [1, 1, 0, 0]

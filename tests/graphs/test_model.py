"""Tests for the graph data model: edge packing and PlacedGraph."""

import numpy as np
import pytest

import repro
from repro.errors import DistributionError
from repro.graphs import (
    MAX_VERTICES,
    PlacedGraph,
    canonical_edges,
    decode_edges,
    encode_edges,
)
from repro.topology.builders import star, two_level


class TestEdgeEncoding:
    def test_round_trip(self):
        src = np.array([0, 5, MAX_VERTICES - 1], dtype=np.int64)
        dst = np.array([1, 7, 0], dtype=np.int64)
        back_src, back_dst = decode_edges(encode_edges(src, dst))
        assert np.array_equal(back_src, src)
        assert np.array_equal(back_dst, dst)

    def test_one_element_per_edge(self):
        packed = encode_edges([1, 2, 3], [4, 5, 6])
        assert packed.shape == (3,)
        assert packed.dtype == np.int64

    def test_rejects_out_of_range(self):
        with pytest.raises(DistributionError):
            encode_edges([MAX_VERTICES], [0])
        with pytest.raises(DistributionError):
            encode_edges([-1], [0])

    def test_rejects_misaligned(self):
        with pytest.raises(DistributionError):
            encode_edges([1, 2], [3])


class TestCanonicalEdges:
    def test_orients_and_dedupes(self):
        edges = np.array([[2, 1], [1, 2], [3, 4]], dtype=np.int64)
        canonical = canonical_edges(edges)
        assert canonical.tolist() == [[1, 2], [3, 4]]

    def test_rejects_self_loops(self):
        with pytest.raises(DistributionError):
            canonical_edges(np.array([[1, 1]], dtype=np.int64))

    def test_empty(self):
        assert canonical_edges(np.empty((0, 2), np.int64)).shape == (0, 2)


class TestPlacedGraph:
    def test_from_edges_places_every_edge_once(self):
        tree = two_level([2, 2], uplink_bandwidth=2.0)
        edges = repro.gnm_random_graph(40, 80, seed=1)
        graph = PlacedGraph.from_edges(tree, edges, policy="zipf", seed=2)
        assert graph.num_edges == 80
        assert sorted(map(tuple, graph.edges().tolist())) == sorted(
            map(tuple, edges.tolist())
        )

    def test_num_vertices_inferred_and_validated(self):
        tree = star(3)
        graph = PlacedGraph.from_edges(
            tree, np.array([[0, 7], [3, 5]], dtype=np.int64)
        )
        assert graph.num_vertices == 8
        with pytest.raises(DistributionError):
            PlacedGraph.from_edges(
                tree,
                np.array([[0, 7]], dtype=np.int64),
                num_vertices=4,
            )

    def test_degrees_match_reference(self):
        tree = star(4)
        edges = repro.gnm_random_graph(30, 60, seed=3)
        graph = PlacedGraph.from_edges(tree, edges, policy="uniform", seed=4)
        expected = repro.graphs.reference_degrees(
            edges, num_vertices=graph.num_vertices
        )
        assert np.array_equal(graph.degrees(), expected)
        assert graph.degrees().sum() == 2 * graph.num_edges

    def test_vertices_are_sorted_endpoints(self):
        tree = star(3)
        graph = PlacedGraph.from_edges(
            tree, np.array([[9, 2], [2, 5]], dtype=np.int64)
        )
        assert graph.vertices().tolist() == [2, 5, 9]

    def test_placement_policies_spread_differently(self):
        tree = star(4)
        edges = repro.gnm_random_graph(50, 100, seed=5)
        uniform = PlacedGraph.from_edges(tree, edges, policy="uniform")
        heavy = PlacedGraph.from_edges(tree, edges, policy="single-heavy")
        uniform_sizes = sorted(
            uniform.distribution.sizes("E").values(), reverse=True
        )
        heavy_sizes = sorted(
            heavy.distribution.sizes("E").values(), reverse=True
        )
        assert heavy_sizes[0] > uniform_sizes[0]

    def test_describe_mentions_sizes(self):
        tree = star(3)
        graph = PlacedGraph.from_edges(
            tree, np.array([[0, 1]], dtype=np.int64)
        )
        text = graph.describe()
        assert "n=2" in text and "m=1" in text

"""Tests for the connected-components task and its protocols."""

import numpy as np
import pytest

import repro
from repro.errors import ProtocolError
from repro.graphs import (
    PlacedGraph,
    components_lower_bound,
    reference_components,
    run_components,
)
from repro.graphs.model import encode_edges
from repro.data.distribution import Distribution
from repro.topology.builders import star, two_level

PROTOCOLS = ("tree", "uniform-hash", "gather")


@pytest.fixture
def instance():
    tree = two_level([3, 3], leaf_bandwidth=[4.0, 1.0], uplink_bandwidth=2.0)
    edges = repro.planted_components_graph(3, 20, seed=5)
    graph = PlacedGraph.from_edges(tree, edges, policy="zipf", seed=6)
    return tree, graph


class TestCorrectness:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_outputs_match_union_find(self, instance, protocol):
        tree, graph = instance
        report = run_components(tree, graph, protocol=protocol, seed=7)
        expected = reference_components(graph.edges())
        found = {}
        for step in report.supersteps:
            assert step.cost >= 0
        # re-run at engine level to inspect outputs (verify=True already
        # checked them; this asserts the exact labelling independently)
        from repro.engine import run_with_result

        _, result = run_with_result(
            "connected-components",
            tree,
            graph.distribution,
            protocol=protocol,
            seed=7,
        )
        for labels in result.outputs.values():
            found.update(labels)
        assert found == expected
        assert report.converged

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_single_edge(self, protocol):
        tree = star(3)
        graph = PlacedGraph.from_edges(
            tree, np.array([[4, 2]], dtype=np.int64)
        )
        report = run_components(tree, graph, protocol=protocol)
        assert report.converged
        assert report.num_vertices == 2

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_empty_graph(self, protocol):
        tree = star(3)
        empty = Distribution({node: {"E": []} for node in tree.compute_nodes})
        report = run_components(tree, empty, protocol=protocol)
        assert report.cost == 0
        assert report.converged
        assert report.num_vertices == 0

    def test_seed_reproducible(self, instance):
        tree, graph = instance
        first = run_components(tree, graph, protocol="tree", seed=3)
        second = run_components(tree, graph, protocol="tree", seed=3)
        assert first.cost == second.cost
        assert first.rounds == second.rounds

    def test_convergence_cap_raises(self, instance):
        tree, graph = instance
        with pytest.raises(ProtocolError):
            run_components(
                tree, graph, protocol="tree", seed=3, max_supersteps=1
            )


class TestEngineIntegration:
    def test_registered_with_aliases(self):
        spec = repro.get_task("cc")
        assert spec.name == "connected-components"
        assert spec.default_protocol == "tree"
        names = set(repro.protocols_for("connected-components"))
        assert {"tree", "uniform-hash", "gather"} <= names

    def test_engine_run_reports_bound(self, instance):
        tree, graph = instance
        report = repro.run(
            "connected-components", tree, graph.distribution, seed=1
        )
        assert report.task == "connected-components"
        assert report.lower_bound > 0
        assert report.cost >= report.lower_bound

    def test_verifier_rejects_wrong_labelling(self, instance):
        tree, graph = instance
        from repro.graphs.components import _verify_components
        from repro.sim.protocol import ProtocolResult
        from repro.sim.ledger import CostLedger

        bogus = ProtocolResult(
            protocol="bogus",
            rounds=1,
            cost=0.0,
            cost_bits=0.0,
            ledger=CostLedger(tree),
            outputs={next(iter(tree.compute_nodes)): {0: 99}},
            meta={"tag": "E"},
        )
        with pytest.raises(ProtocolError):
            _verify_components(tree, graph.distribution, bogus)


class TestCostModel:
    def test_tree_beats_uniform_hash(self, instance):
        tree, graph = instance
        aware = run_components(tree, graph, protocol="tree", seed=2)
        base = run_components(tree, graph, protocol="uniform-hash", seed=2)
        assert aware.cost < base.cost

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_cost_at_least_lower_bound(self, instance, protocol):
        tree, graph = instance
        report = run_components(tree, graph, protocol=protocol, seed=2)
        assert report.cost >= report.lower_bound

    def test_supersteps_sum_to_totals(self, instance):
        tree, graph = instance
        report = run_components(tree, graph, protocol="tree", seed=2)
        assert report.cost == pytest.approx(
            sum(step.cost for step in report.supersteps)
        )
        assert report.rounds == sum(step.rounds for step in report.supersteps)
        # the shuffle steps are registered group-by runs
        shuffles = [
            step
            for step in report.supersteps
            if step.task == "groupby-aggregate"
        ]
        assert shuffles and all(s.protocol == "tree-groupby" for s in shuffles)

    def test_lower_bound_counts_spanning_components(self):
        # two components, each entirely on one side of the uplink: the
        # bound must be zero; one spanning component: 1 / (2 w), the
        # full-duplex split halving the forced per-direction crossings.
        tree = two_level([1, 1], uplink_bandwidth=0.5, name="pair")
        nodes = sorted(tree.compute_nodes, key=str)
        local = Distribution(
            {
                nodes[0]: {"E": encode_edges([0], [1])},
                nodes[1]: {"E": encode_edges([5], [6])},
            }
        )
        assert components_lower_bound(tree, local).value == 0.0
        spanning = Distribution(
            {
                nodes[0]: {"E": encode_edges([0], [1])},
                nodes[1]: {"E": encode_edges([1], [2])},
            }
        )
        bound = components_lower_bound(tree, spanning)
        assert bound.value == pytest.approx(1 / (2 * 0.5))

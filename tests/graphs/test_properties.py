"""Property tests: graph generators and GraphRunReport round-trips."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import (
    gnm_random_graph,
    planted_components_graph,
    powerlaw_graph,
)
from repro.graphs import reference_components, reference_degrees
from repro.report import GraphRunReport, RunReport


# --------------------------------------------------------------------- #
# generators
# --------------------------------------------------------------------- #


@settings(max_examples=40, deadline=None)
@given(
    num_vertices=st.integers(2, 120),
    density=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**16),
)
def test_gnm_degree_sums_match_edge_count(num_vertices, density, seed):
    max_edges = num_vertices * (num_vertices - 1) // 2
    num_edges = int(density * max_edges)
    edges = gnm_random_graph(num_vertices, num_edges, seed=seed)
    assert edges.shape == (num_edges, 2)
    # simple graph: canonical orientation, no duplicates, no loops
    assert np.all(edges[:, 0] < edges[:, 1])
    assert len(np.unique(edges, axis=0)) == num_edges
    degrees = reference_degrees(edges, num_vertices=num_vertices)
    assert degrees.sum() == 2 * num_edges


@settings(max_examples=25, deadline=None)
@given(
    num_vertices=st.integers(10, 150),
    seed=st.integers(0, 2**16),
    exponent=st.floats(0.0, 2.5),
)
def test_powerlaw_degree_sums_and_simplicity(num_vertices, seed, exponent):
    num_edges = num_vertices  # sparse enough to be drawable at any skew
    edges = powerlaw_graph(
        num_vertices, num_edges, exponent=exponent, seed=seed
    )
    assert edges.shape == (num_edges, 2)
    assert np.all(edges[:, 0] < edges[:, 1])
    assert len(np.unique(edges, axis=0)) == num_edges
    degrees = reference_degrees(edges, num_vertices=num_vertices)
    assert degrees.sum() == 2 * num_edges


@settings(max_examples=25, deadline=None)
@given(
    num_components=st.integers(1, 6),
    component_size=st.integers(2, 25),
    seed=st.integers(0, 2**16),
)
def test_planted_components_are_recovered(num_components, component_size, seed):
    edges = planted_components_graph(
        num_components, component_size, seed=seed
    )
    labels = reference_components(edges)
    # every vertex of every block is present (spanning trees connect them)
    assert len(labels) == num_components * component_size
    # each block is exactly one component, labelled by its first vertex
    for index in range(num_components):
        offset = index * component_size
        for vertex in range(offset, offset + component_size):
            assert labels[vertex] == offset


# --------------------------------------------------------------------- #
# GraphRunReport JSON round-trip
# --------------------------------------------------------------------- #


def _step_reports():
    return st.builds(
        RunReport,
        task=st.sampled_from(["groupby-aggregate", "equijoin"]),
        protocol=st.sampled_from(["tree-groupby", "tree-equijoin"]),
        topology=st.just("hyp-tree"),
        placement=st.sampled_from(
            ["superstep 1 shuffle", "superstep 1 return"]
        ),
        input_size=st.integers(0, 10_000),
        rounds=st.integers(0, 4),
        cost=st.floats(0, 1e6, allow_nan=False),
        lower_bound=st.floats(0, 1e5, allow_nan=False),
        meta=st.just({}),
    )


@settings(max_examples=40, deadline=None)
@given(
    supersteps=st.lists(_step_reports(), max_size=5),
    num_vertices=st.integers(0, 2**20),
    num_edges=st.integers(0, 2**20),
    lower_bound=st.floats(0, 1e6, allow_nan=False),
    converged=st.booleans(),
)
def test_graph_report_json_round_trip(
    supersteps, num_vertices, num_edges, lower_bound, converged
):
    import json

    report = GraphRunReport(
        task="connected-components",
        protocol="tree-components",
        topology="hyp-tree",
        placement="zipf",
        num_vertices=num_vertices,
        num_edges=num_edges,
        supersteps=tuple(supersteps),
        lower_bound=lower_bound,
        converged=converged,
        meta={"num_supersteps": len(supersteps)},
    )
    payload = json.loads(json.dumps(report.to_dict()))
    rebuilt = GraphRunReport.from_dict(payload)
    assert rebuilt.task == report.task
    assert rebuilt.protocol == report.protocol
    assert rebuilt.num_vertices == report.num_vertices
    assert rebuilt.num_edges == report.num_edges
    assert rebuilt.converged == report.converged
    assert rebuilt.cost == report.cost
    assert rebuilt.rounds == report.rounds
    assert rebuilt.lower_bound == report.lower_bound
    assert len(rebuilt.supersteps) == len(report.supersteps)
    for old, new in zip(report.supersteps, rebuilt.supersteps):
        assert new.task == old.task
        assert new.cost == old.cost
        assert new.rounds == old.rounds

"""End-to-end integration tests across the whole library.

These exercise the public package API (``import repro``) the way the
examples do: build a topology, generate a placement, run all three tasks
with both the paper's algorithms and the baselines, and check costs
against lower bounds and correctness against ground truth.
"""

import numpy as np
import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestQuickstartFlow:
    def test_readme_flow(self):
        tree = repro.two_level([4, 4], uplink_bandwidth=2.0)
        dist = repro.random_distribution(
            tree, r_size=1000, s_size=5000, policy="zipf", seed=0
        )
        report = repro.run_intersection(tree, dist)
        assert report.rounds == 1
        assert report.cost <= 8 * report.lower_bound


class TestCrossTaskSuite:
    @pytest.mark.parametrize("policy", ["uniform", "zipf", "single-heavy"])
    def test_all_tasks_all_topologies(self, any_topology, policy):
        dist = repro.random_distribution(
            any_topology, r_size=200, s_size=200, policy=policy, seed=11
        )
        intersection = repro.run_intersection(
            any_topology, dist, placement=policy
        )
        cartesian = repro.run_cartesian(any_topology, dist, placement=policy)
        sorting = repro.run_sorting(any_topology, dist, placement=policy)
        assert intersection.rounds == 1
        assert cartesian.rounds == 1
        assert sorting.rounds <= 4

    def test_normalization_preserves_results(self):
        # Run intersection on a topology with an internal compute node,
        # normalized per Section 2.1, and check the answer is unchanged.
        tree = repro.TreeTopology.from_undirected(
            {("a", "m"): 1.0, ("m", "b"): 2.0, ("m", "c"): 2.0},
            ["a", "m", "b", "c"],
        )
        placements = {
            "a": {"R": np.arange(0, 30), "S": np.arange(100, 120)},
            "m": {"R": np.arange(30, 50), "S": np.arange(0, 10)},
            "b": {"S": np.arange(10, 40)},
            "c": {"R": np.arange(50, 55), "S": np.arange(200, 230)},
        }
        dist = repro.Distribution(placements)
        expected = set(
            np.intersect1d(dist.relation("R"), dist.relation("S")).tolist()
        )
        normalized = repro.normalize(tree, virtual_bandwidth="sum")
        remapped = dist.remap(normalized.node_map)
        result = repro.tree_intersect(normalized.tree, remapped, seed=1)
        found: set = set()
        for values in result.outputs.values():
            found |= set(values.tolist())
        assert found == expected


class TestBaselineComparisons:
    def test_topology_aware_wins_on_skewed_star(self):
        # Heterogeneous bandwidths + skewed placement: the weighted
        # algorithms must beat the uniform baselines clearly.
        tree = repro.star(8, bandwidth=[16, 16, 8, 8, 4, 4, 1, 1])
        dist = repro.random_distribution(
            tree, r_size=2000, s_size=2000, policy="proportional", seed=13
        )
        aware = repro.run_cartesian(tree, dist, protocol="tree")
        agnostic = repro.run_cartesian(tree, dist, protocol="classic-hypercube")
        assert aware.cost < agnostic.cost

    def test_weighted_sort_beats_terasort_on_skewed_tree(self):
        tree = repro.two_level(
            [4, 4], leaf_bandwidth=[4.0, 1.0], uplink_bandwidth=1.0
        )
        values = repro.make_sort_input(20_000, seed=3)
        nodes = tree.left_to_right_compute_order()
        sizes = repro.place_zipf(20_000, nodes, exponent=1.5)
        dist = repro.distribute(values, sizes, tag="R", shuffle_seed=4)
        wts = repro.run_sorting(tree, dist, protocol="wts", seed=5)
        classic = repro.run_sorting(tree, dist, protocol="terasort", seed=5)
        assert wts.cost < classic.cost

    def test_gather_optimal_for_dominant_node(self):
        tree = repro.star(5)
        dist = repro.random_distribution(
            tree, r_size=500, s_size=500,
            policy="single-heavy", heavy_fraction=0.9, seed=17,
        )
        gather = repro.run_intersection(tree, dist, protocol="gather")
        bound = repro.intersection_lower_bound(tree, dist)
        assert gather.cost <= 3 * max(bound.value, 1.0)


class TestCostModelConsistency:
    def test_cost_identical_across_runs(self, any_topology):
        dist = repro.random_distribution(
            any_topology, r_size=300, s_size=300, seed=19
        )
        costs = {
            repro.tree_cartesian_product(any_topology, dist).cost
            for _ in range(3)
        }
        assert len(costs) == 1

    def test_bits_cost_scales_with_bits(self, simple_star):
        dist = repro.random_distribution(simple_star, r_size=100, s_size=100, seed=2)
        result = repro.tree_intersect(simple_star, dist, seed=0)
        assert result.cost_bits == result.cost * 64

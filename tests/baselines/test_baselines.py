"""Unit tests for the topology-agnostic baselines."""

import numpy as np
import pytest

from repro.baselines.gather import (
    gather_cartesian_product,
    gather_intersect,
    gather_sort,
)
from repro.baselines.hypercube import (
    _lattice_shape,
    classic_hypercube_cartesian_product,
)
from repro.baselines.uniform_hash import uniform_hash_intersect
from repro.core.sorting.ordering import verify_sorted_output
from repro.data.distribution import Distribution
from repro.data.generators import random_distribution
from repro.topology.builders import star, two_level


class TestUniformHash:
    def test_correct_intersection(self, any_topology):
        dist = random_distribution(any_topology, r_size=100, s_size=400, seed=1)
        result = uniform_hash_intersect(any_topology, dist, seed=2)
        expected = set(
            np.intersect1d(dist.relation("R"), dist.relation("S")).tolist()
        )
        found: set = set()
        for values in result.outputs.values():
            found |= set(values.tolist())
        assert found == expected

    def test_single_round(self, simple_star):
        dist = random_distribution(simple_star, r_size=50, s_size=50, seed=0)
        assert uniform_hash_intersect(simple_star, dist).rounds == 1

    def test_ignores_bandwidth(self):
        fast = star(4, bandwidth=8.0)
        slow = star(4, bandwidth=[8.0, 8.0, 8.0, 0.5])
        dist = random_distribution(fast, r_size=200, s_size=200, seed=3)
        fast_loads = uniform_hash_intersect(fast, dist, seed=1)
        slow_loads = uniform_hash_intersect(slow, dist, seed=1)
        # identical traffic, different cost: only the bandwidths differ
        assert fast_loads.ledger.round_loads(0) == slow_loads.ledger.round_loads(0)
        assert slow_loads.cost > fast_loads.cost


class TestClassicHypercube:
    def test_lattice_shape_prefers_balanced(self):
        p1, p2 = _lattice_shape(16, 100, 100)
        assert (p1, p2) == (4, 4)

    def test_lattice_shape_skews_with_sizes(self):
        p1, p2 = _lattice_shape(16, 1600, 100)
        assert p1 > p2

    def test_enumerates_all_pairs(self, any_topology):
        dist = random_distribution(any_topology, r_size=50, s_size=50, seed=4)
        result = classic_hypercube_cartesian_product(any_topology, dist)
        produced = sum(o["num_pairs"] for o in result.outputs.values())
        assert produced == 2500

    def test_materialized_pairs(self, simple_star):
        dist = random_distribution(simple_star, r_size=8, s_size=8, seed=5)
        result = classic_hypercube_cartesian_product(
            simple_star, dist, materialize=True
        )
        truth = {
            (int(r), int(s))
            for r in dist.relation("R")
            for s in dist.relation("S")
        }
        found: set = set()
        for output in result.outputs.values():
            if "pairs" in output:
                found |= {tuple(p) for p in output["pairs"].tolist()}
        assert found == truth

    def test_empty_relation(self, simple_star):
        dist = Distribution({"v1": {"R": [1, 2], "S": []}})
        result = classic_hypercube_cartesian_product(simple_star, dist)
        assert sum(o["num_pairs"] for o in result.outputs.values()) == 0


class TestGatherBaselines:
    def test_gather_intersect(self, simple_two_level):
        dist = random_distribution(
            simple_two_level, r_size=60, s_size=120, seed=6
        )
        result = gather_intersect(simple_two_level, dist)
        expected = set(
            np.intersect1d(dist.relation("R"), dist.relation("S")).tolist()
        )
        assert set(result.outputs[result.meta["target"]].tolist()) == expected
        assert result.rounds == 1

    def test_gather_targets_data_rich_node(self, simple_two_level):
        dist = random_distribution(
            simple_two_level, r_size=100, s_size=100,
            policy="single-heavy", seed=7,
        )
        sizes = {v: dist.size(v) for v in simple_two_level.compute_nodes}
        result = gather_intersect(simple_two_level, dist)
        assert sizes[result.meta["target"]] == max(sizes.values())

    def test_gather_sort(self, simple_two_level):
        dist = random_distribution(simple_two_level, r_size=200, s_size=0, seed=8)
        result = gather_sort(simple_two_level, dist)
        verify_sorted_output(
            simple_two_level,
            result.outputs,
            result.meta["order"],
            dist.relation("R"),
        )

    def test_gather_cartesian(self, simple_star):
        dist = random_distribution(simple_star, r_size=30, s_size=30, seed=9)
        result = gather_cartesian_product(simple_star, dist)
        assert sum(o["num_pairs"] for o in result.outputs.values()) == 900

    def test_explicit_target(self, simple_star):
        dist = random_distribution(simple_star, r_size=20, s_size=20, seed=1)
        result = gather_sort(simple_star, dist, target="v2")
        assert result.meta["target"] == "v2"
        assert len(result.outputs["v2"]) == 20

"""Protocol-level tests for StarIntersect (Alg. 1) and TreeIntersect (Alg. 2)."""

import numpy as np
import pytest

from repro.core.intersection.lower_bound import intersection_lower_bound
from repro.core.intersection.star import star_intersect
from repro.core.intersection.tree import tree_intersect
from repro.data.distribution import Distribution
from repro.data.generators import random_distribution
from repro.errors import ProtocolError
from repro.topology.builders import caterpillar, star, two_level


def emitted_union(result) -> set:
    out: set = set()
    for values in result.outputs.values():
        out |= set(np.asarray(values).tolist())
    return out


def expected_intersection(dist) -> set:
    return set(
        np.intersect1d(dist.relation("R"), dist.relation("S")).tolist()
    )


class TestTreeIntersectCorrectness:
    @pytest.mark.parametrize("policy", ["uniform", "zipf", "single-heavy"])
    def test_exact_intersection(self, any_topology, policy):
        dist = random_distribution(
            any_topology, r_size=150, s_size=700, policy=policy, seed=3
        )
        result = tree_intersect(any_topology, dist, seed=1)
        assert emitted_union(result) == expected_intersection(dist)

    def test_single_round(self, any_topology):
        dist = random_distribution(any_topology, r_size=50, s_size=200, seed=0)
        result = tree_intersect(any_topology, dist, seed=0)
        assert result.rounds == 1

    def test_swapped_relations(self, simple_star):
        # |R| > |S|: the protocol must swap roles internally.
        dist = random_distribution(simple_star, r_size=400, s_size=100, seed=4)
        result = tree_intersect(simple_star, dist, seed=0)
        assert result.meta["swapped_relations"]
        assert emitted_union(result) == expected_intersection(dist)

    def test_empty_r(self, simple_star):
        dist = Distribution({"v1": {"S": [1, 2, 3]}, "v2": {"R": []}})
        result = tree_intersect(simple_star, dist)
        assert emitted_union(result) == set()

    def test_disjoint_relations(self, simple_star):
        dist = Distribution(
            {"v1": {"R": [1, 2, 3]}, "v2": {"S": [10, 20, 30]}}
        )
        result = tree_intersect(simple_star, dist)
        assert emitted_union(result) == set()

    def test_identical_relations(self, simple_star):
        values = list(range(50))
        dist = Distribution({"v1": {"R": values}, "v2": {"S": values}})
        result = tree_intersect(simple_star, dist)
        assert emitted_union(result) == set(values)

    def test_single_compute_node(self):
        tree = star(1)
        dist = Distribution({"v1": {"R": [1, 2, 3], "S": [2, 3, 4]}})
        result = tree_intersect(tree, dist)
        assert emitted_union(result) == {2, 3}
        assert result.cost == 0.0  # everything is already local

    def test_deterministic_in_seed(self, simple_two_level):
        dist = random_distribution(
            simple_two_level, r_size=100, s_size=300, seed=1
        )
        first = tree_intersect(simple_two_level, dist, seed=7)
        second = tree_intersect(simple_two_level, dist, seed=7)
        assert first.cost == second.cost

    def test_seed_changes_routing(self, simple_two_level):
        # The hash functions differ per seed, so the per-edge load
        # profile must change even if the bottleneck cost coincides.
        dist = random_distribution(
            simple_two_level, r_size=100, s_size=300, seed=1
        )
        profiles = {
            tuple(
                sorted(
                    tree_intersect(simple_two_level, dist, seed=s)
                    .ledger.round_loads(0)
                    .items()
                )
            )
            for s in range(5)
        }
        assert len(profiles) > 1

    def test_explicit_blocks_override(self, simple_star):
        dist = random_distribution(simple_star, r_size=50, s_size=150, seed=2)
        result = tree_intersect(
            simple_star, dist, blocks=[simple_star.compute_nodes]
        )
        assert result.meta["num_blocks"] == 1
        assert emitted_union(result) == expected_intersection(dist)


class TestTreeIntersectCost:
    @pytest.mark.parametrize("policy", ["uniform", "zipf", "single-heavy"])
    def test_cost_tracks_lower_bound(self, policy):
        tree = two_level([3, 3], uplink_bandwidth=0.5)
        dist = random_distribution(
            tree, r_size=500, s_size=3000, policy=policy, seed=5
        )
        result = tree_intersect(tree, dist, seed=2)
        bound = intersection_lower_bound(tree, dist)
        # Theorem 2 allows O(log N log V); empirically a small constant.
        assert result.cost <= 6 * bound.value

    def test_beta_edges_carry_at_most_r_with_slack(self):
        tree = two_level([2, 2], leaf_bandwidth=4.0)
        dist = random_distribution(
            tree, r_size=200, s_size=2000, policy="uniform", seed=6
        )
        sizes = {v: dist.size(v) for v in tree.compute_nodes}
        result = tree_intersect(tree, dist, seed=3)
        from repro.core.intersection.partition import classify_edges

        classification = classify_edges(tree, sizes, 200)
        loads = result.ledger.round_loads(0)
        for edge in classification.beta:
            for directed in (edge, (edge[1], edge[0])):
                # w.h.p. within a small constant of |R| (Theorem 2 case Eβ)
                assert loads.get(directed, 0) <= 3 * 200


class TestStarIntersect:
    def test_exact_intersection(self, simple_star):
        dist = random_distribution(simple_star, r_size=120, s_size=600, seed=8)
        result = star_intersect(simple_star, dist, seed=1)
        assert emitted_union(result) == expected_intersection(dist)

    def test_rejects_non_star(self, simple_two_level):
        dist = random_distribution(
            simple_two_level, r_size=10, s_size=10, seed=0
        )
        with pytest.raises(ProtocolError, match="star"):
            star_intersect(simple_two_level, dist)

    def test_single_round(self, simple_star):
        dist = random_distribution(simple_star, r_size=50, s_size=100, seed=2)
        assert star_intersect(simple_star, dist).rounds == 1

    def test_beta_nodes_join_locally(self):
        tree = star(3)
        # v3 is data-rich: min(N_v3, N - N_v3) = 12 >= |R| = 3.
        dist = Distribution(
            {
                "v1": {"R": [1, 2, 3], "S": [100, 101, 102, 103]},
                "v2": {"S": [1, 104, 105, 106, 107]},
                "v3": {"S": [2, 3] + list(range(200, 220))},
            }
        )
        result = star_intersect(tree, dist, seed=5)
        assert "v3" in result.meta["v_beta"]
        assert emitted_union(result) == {1, 2, 3}

    def test_all_alpha_when_balanced(self, simple_star):
        dist = random_distribution(
            simple_star, r_size=300, s_size=300, policy="uniform", seed=1
        )
        result = star_intersect(simple_star, dist)
        assert result.meta["v_beta"] == []
        assert emitted_union(result) == expected_intersection(dist)

    def test_matches_tree_variant_quality(self, simple_star):
        dist = random_distribution(simple_star, r_size=200, s_size=900, seed=9)
        bound = intersection_lower_bound(simple_star, dist)
        star_cost = star_intersect(simple_star, dist, seed=0).cost
        tree_cost = tree_intersect(simple_star, dist, seed=0).cost
        assert star_cost <= 6 * bound.value
        assert tree_cost <= 6 * bound.value

    def test_empty_instance(self, simple_star):
        dist = Distribution({"v1": {"R": [], "S": []}})
        result = star_intersect(simple_star, dist)
        assert emitted_union(result) == set()
        assert result.cost == 0.0

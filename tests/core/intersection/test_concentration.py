"""Statistical validation of the 'with high probability' claims.

Theorem 2 bounds TreeIntersect's cost w.h.p. over the random hash
functions.  These tests run the protocol across many independent seeds
on a fixed instance and check that *every* run stays within a small
constant of the Theorem 1 bound — the empirical counterpart of the
w.h.p. statement (a single bad seed would fail the suite).
"""

import numpy as np
import pytest

from repro.core.intersection.lower_bound import intersection_lower_bound
from repro.core.intersection.tree import tree_intersect
from repro.core.sorting.lower_bound import sorting_lower_bound
from repro.core.sorting.wts import weighted_terasort
from repro.data.generators import (
    adversarial_sorted_distribution,
    random_distribution,
)
from repro.topology.builders import two_level

NUM_SEEDS = 30


class TestIntersectionConcentration:
    @pytest.fixture(scope="class")
    def instance(self):
        tree = two_level([3, 3], uplink_bandwidth=0.5)
        dist = random_distribution(
            tree, r_size=1_000, s_size=6_000, policy="zipf", seed=41
        )
        return tree, dist

    def test_every_seed_within_constant_of_bound(self, instance):
        tree, dist = instance
        bound = intersection_lower_bound(tree, dist).value
        costs = [
            tree_intersect(tree, dist, seed=seed).cost
            for seed in range(NUM_SEEDS)
        ]
        assert max(costs) <= 6 * bound, max(costs) / bound

    def test_costs_concentrate(self, instance):
        tree, dist = instance
        costs = np.array(
            [
                tree_intersect(tree, dist, seed=seed).cost
                for seed in range(NUM_SEEDS)
            ]
        )
        # spread across seeds stays tight: max within 1.5x of median
        assert costs.max() <= 1.5 * np.median(costs)


class TestSortingConcentration:
    def test_every_seed_within_constant_of_bound(self):
        tree = two_level([3, 3], uplink_bandwidth=0.5)
        dist = adversarial_sorted_distribution(tree, total=20_000)
        bound = sorting_lower_bound(tree, dist).value
        costs = [
            weighted_terasort(tree, dist, seed=seed).cost
            for seed in range(NUM_SEEDS)
        ]
        assert max(costs) <= 4 * bound
        assert max(costs) <= 1.5 * float(np.median(costs))

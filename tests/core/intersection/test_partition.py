"""Unit tests for α/β classification and the balanced partition (Alg. 3)."""

import pytest

from repro.core.intersection.partition import (
    balanced_partition,
    block_spanning_edges,
    classify_edges,
    verify_balanced_partition,
)
from repro.topology.builders import caterpillar, star, two_level


class TestClassifyEdges:
    def test_all_beta_when_r_small(self):
        tree = star(4)
        sizes = {f"v{i}": 100 for i in range(1, 5)}
        classification = classify_edges(tree, sizes, r_size=10)
        assert classification.num_alpha == 0
        assert classification.num_beta == 4

    def test_all_alpha_when_r_large(self):
        tree = star(4)
        sizes = {f"v{i}": 5 for i in range(1, 5)}
        classification = classify_edges(tree, sizes, r_size=10)
        assert classification.num_alpha == 4
        assert classification.num_beta == 0

    def test_mixed(self):
        tree = star(3)
        sizes = {"v1": 100, "v2": 100, "v3": 1}
        classification = classify_edges(tree, sizes, r_size=50)
        assert tree.canonical_edge("v3", "w") in classification.alpha
        assert tree.canonical_edge("v1", "w") in classification.beta

    def test_classification_is_direction_free(self):
        tree = two_level([2, 2])
        sizes = {"v1": 30, "v2": 30, "v3": 30, "v4": 30}
        classification = classify_edges(tree, sizes, r_size=20)
        assert classification.num_alpha + classification.num_beta == len(
            tree.undirected_edges()
        )


class TestBalancedPartition:
    def test_no_beta_edges_single_block(self):
        tree = star(4)
        sizes = {f"v{i}": 2 for i in range(1, 5)}
        blocks = balanced_partition(tree, sizes, r_size=100)
        assert blocks == [tree.compute_nodes]

    def test_all_heavy_star_gives_singletons(self):
        tree = star(4)
        sizes = {f"v{i}": 100 for i in range(1, 5)}
        blocks = balanced_partition(tree, sizes, r_size=10)
        assert sorted(len(b) for b in blocks) == [1, 1, 1, 1]

    def test_blocks_partition_computes(self):
        tree = two_level([3, 3])
        sizes = {f"v{i}": 10 * i for i in range(1, 7)}
        blocks = balanced_partition(tree, sizes, r_size=35)
        union = set()
        for block in blocks:
            assert not (union & block)
            union |= set(block)
        assert union == set(tree.compute_nodes)

    @pytest.mark.parametrize("r_size", [1, 10, 50, 100, 500])
    def test_definition1_on_two_level(self, r_size):
        tree = two_level([3, 3, 2])
        sizes = {f"v{i}": 17 * i % 97 for i in range(1, 9)}
        if sum(sizes.values()) < 2 * r_size:
            pytest.skip("outside the |R| <= |S| regime")
        blocks = balanced_partition(tree, sizes, r_size)
        violations = verify_balanced_partition(tree, sizes, r_size, blocks)
        assert violations == []

    @pytest.mark.parametrize("r_size", [1, 5, 20, 60])
    def test_definition1_on_caterpillar(self, r_size):
        tree = caterpillar(4, 2)
        sizes = {f"v{i}": (i * 13) % 40 for i in range(1, 9)}
        if sum(sizes.values()) < 2 * r_size:
            pytest.skip("outside the |R| <= |S| regime")
        blocks = balanced_partition(tree, sizes, r_size)
        assert verify_balanced_partition(tree, sizes, r_size, blocks) == []

    def test_zero_r_size(self):
        tree = star(3)
        sizes = {"v1": 5, "v2": 5, "v3": 5}
        blocks = balanced_partition(tree, sizes, r_size=0)
        union = frozenset().union(*blocks)
        assert union == tree.compute_nodes

    def test_merging_respects_alpha_connectivity(self):
        # Rack 1 holds little data (α-connected through its router);
        # its nodes must land in one block together.
        tree = two_level([2, 2], leaf_bandwidth=1.0)
        sizes = {"v1": 3, "v2": 3, "v3": 50, "v4": 50}
        blocks = balanced_partition(tree, sizes, r_size=20)
        block_of = {v: i for i, b in enumerate(blocks) for v in b}
        assert block_of["v1"] == block_of["v2"]


class TestBlockSpanningEdges:
    def test_single_node_block_has_no_edges(self, simple_two_level):
        assert block_spanning_edges(simple_two_level, frozenset({"v1"})) == frozenset()

    def test_same_rack_block(self, simple_two_level):
        edges = block_spanning_edges(simple_two_level, frozenset({"v1", "v2"}))
        assert edges == {
            simple_two_level.canonical_edge("v1", "w1"),
            simple_two_level.canonical_edge("v2", "w1"),
        }

    def test_cross_rack_block_includes_core_links(self, simple_two_level):
        edges = block_spanning_edges(simple_two_level, frozenset({"v1", "v3"}))
        assert simple_two_level.canonical_edge("w1", "core") in edges
        assert simple_two_level.canonical_edge("w2", "core") in edges


class TestVerifier:
    def test_detects_overlap(self):
        tree = star(2)
        sizes = {"v1": 5, "v2": 5}
        violations = verify_balanced_partition(
            tree, sizes, 1, [frozenset({"v1", "v2"}), frozenset({"v2"})]
        )
        assert any("overlap" in v for v in violations)

    def test_detects_missing_cover(self):
        tree = star(2)
        violations = verify_balanced_partition(
            tree, {"v1": 5, "v2": 5}, 1, [frozenset({"v1"})]
        )
        assert any("cover" in v for v in violations)

    def test_detects_underweight_block(self):
        tree = star(2)
        violations = verify_balanced_partition(
            tree,
            {"v1": 5, "v2": 5},
            100,
            [frozenset({"v1"}), frozenset({"v2"})],
        )
        assert any("< |R|" in v for v in violations)

"""Unit tests for the Theorem 1 lower bound."""

import pytest

from repro.core.intersection.lower_bound import intersection_lower_bound
from repro.data.distribution import Distribution
from repro.errors import TopologyError
from repro.topology.builders import star, two_level
from repro.topology.tree import TreeTopology


class TestIntersectionLowerBound:
    def test_min_of_relation_sizes_caps_the_bound(self):
        tree = star(2, bandwidth=1.0)
        dist = Distribution(
            {"v1": {"R": list(range(5))}, "v2": {"S": list(range(100, 200))}}
        )
        bound = intersection_lower_bound(tree, dist)
        # min(|R|, |S|, N_v1, N_v2) = |R| = 5 on both leaf links.
        assert bound.value == 5.0

    def test_side_sums_cap_the_bound(self):
        tree = star(3, bandwidth=1.0)
        dist = Distribution(
            {
                "v1": {"R": [1, 2]},
                "v2": {"S": list(range(10, 60))},
                "v3": {"S": list(range(100, 150))},
            }
        )
        bound = intersection_lower_bound(tree, dist)
        # Each leaf edge: min(2, 100, N_v, N - N_v) = 2.
        assert bound.value == 2.0

    def test_bandwidth_divides(self):
        tree = star(2, bandwidth=[0.5, 4.0])
        dist = Distribution(
            {
                "v1": {"R": list(range(10))},
                "v2": {"S": list(range(100, 110))},
            }
        )
        bound = intersection_lower_bound(tree, dist)
        assert bound.value == 10 / 0.5
        assert bound.bottleneck_edge == tree.canonical_edge("v1", "w")

    def test_uplink_can_be_the_bottleneck(self):
        tree = two_level([2, 2], leaf_bandwidth=10.0, uplink_bandwidth=0.1)
        dist = Distribution(
            {
                "v1": {"R": list(range(20))},
                "v3": {"S": list(range(100, 140))},
            }
        )
        bound = intersection_lower_bound(tree, dist)
        assert bound.value == 20 / 0.1
        assert "core" in bound.bottleneck_edge[0] or "core" in bound.bottleneck_edge[1]

    def test_empty_relation_gives_zero(self):
        tree = star(2)
        dist = Distribution({"v1": {"S": [1, 2, 3]}})
        bound = intersection_lower_bound(tree, dist)
        assert bound.value == 0.0

    def test_per_edge_values_reported(self, simple_two_level):
        dist = Distribution(
            {"v1": {"R": [1]}, "v3": {"S": [2]}}
        )
        bound = intersection_lower_bound(simple_two_level, dist)
        assert set(bound.per_edge) == set(simple_two_level.undirected_edges())

    def test_requires_symmetry(self):
        tree = TreeTopology({("a", "b"): 1.0, ("b", "a"): 2.0}, ["a", "b"])
        with pytest.raises(TopologyError):
            intersection_lower_bound(tree, Distribution({"a": {"R": [1]}}))

    def test_ratio_of(self):
        tree = star(2)
        dist = Distribution(
            {"v1": {"R": [1, 2]}, "v2": {"S": [1, 3]}}
        )
        bound = intersection_lower_bound(tree, dist)
        assert bound.ratio_of(2 * bound.value) == pytest.approx(2.0)

"""Unit tests for traversal-order validity and output verification."""

import numpy as np
import pytest

from repro.core.sorting.ordering import (
    is_valid_compute_order,
    verify_sorted_output,
)
from repro.errors import ProtocolError
from repro.topology.builders import star, two_level


class TestIsValidComputeOrder:
    def test_canonical_order_is_valid(self, simple_two_level):
        order = simple_two_level.left_to_right_compute_order()
        assert is_valid_compute_order(simple_two_level, order)

    def test_all_rootings_are_valid(self, simple_two_level):
        for root in simple_two_level.nodes:
            order = simple_two_level.left_to_right_compute_order(root)
            assert is_valid_compute_order(simple_two_level, order)

    def test_rack_interleaving_is_invalid(self, simple_two_level):
        # v1, v2 share a rack; separating them by v3 breaks contiguity.
        assert not is_valid_compute_order(
            simple_two_level, ["v1", "v3", "v2", "v4", "v5"]
        )

    def test_any_order_valid_on_star(self):
        tree = star(4)
        assert is_valid_compute_order(tree, ["v3", "v1", "v4", "v2"])

    def test_missing_node_invalid(self, simple_two_level):
        assert not is_valid_compute_order(simple_two_level, ["v1", "v2"])

    def test_duplicate_node_invalid(self, simple_two_level):
        assert not is_valid_compute_order(
            simple_two_level, ["v1", "v1", "v2", "v3", "v4"]
        )

    def test_rotation_is_valid(self, simple_two_level):
        # rotations correspond to re-rooting the traversal
        order = simple_two_level.left_to_right_compute_order()
        rotated = order[2:] + order[:2]
        assert is_valid_compute_order(simple_two_level, rotated)


class TestVerifySortedOutput:
    def setup_method(self):
        self.tree = star(3)
        self.order = ["v1", "v2", "v3"]

    def test_accepts_correct_output(self):
        verify_sorted_output(
            self.tree,
            {"v1": np.array([1, 2]), "v2": np.array([3]), "v3": np.array([4, 5])},
            self.order,
            np.array([5, 4, 3, 2, 1]),
        )

    def test_accepts_empty_nodes(self):
        verify_sorted_output(
            self.tree,
            {"v1": np.array([1, 2, 3])},
            self.order,
            np.array([3, 1, 2]),
        )

    def test_rejects_unsorted_run(self):
        with pytest.raises(ProtocolError, match="unsorted"):
            verify_sorted_output(
                self.tree,
                {"v1": np.array([2, 1])},
                self.order,
                np.array([1, 2]),
            )

    def test_rejects_out_of_order_runs(self):
        with pytest.raises(ProtocolError, match="earlier node"):
            verify_sorted_output(
                self.tree,
                {"v1": np.array([3, 4]), "v2": np.array([1, 2])},
                self.order,
                np.array([1, 2, 3, 4]),
            )

    def test_rejects_lost_elements(self):
        with pytest.raises(ProtocolError, match="permutation"):
            verify_sorted_output(
                self.tree,
                {"v1": np.array([1])},
                self.order,
                np.array([1, 2]),
            )

    def test_rejects_invented_elements(self):
        with pytest.raises(ProtocolError, match="permutation"):
            verify_sorted_output(
                self.tree,
                {"v1": np.array([1, 2, 99])},
                self.order,
                np.array([1, 2]),
            )

    def test_rejects_invalid_order(self, simple_two_level):
        with pytest.raises(ProtocolError, match="not a valid traversal"):
            verify_sorted_output(
                simple_two_level,
                {},
                ["v1", "v3", "v2", "v4", "v5"],
                np.array([]),
            )

    def test_accepts_duplicates_within_node(self):
        verify_sorted_output(
            self.tree,
            {"v1": np.array([1, 1, 2]), "v2": np.array([2, 3])},
            self.order,
            np.array([2, 1, 1, 3, 2]),
        )

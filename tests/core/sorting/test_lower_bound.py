"""Unit tests for the Theorem 6 sorting lower bound."""

import pytest

from repro.core.sorting.lower_bound import sorting_lower_bound
from repro.data.distribution import Distribution
from repro.data.generators import adversarial_sorted_distribution
from repro.topology.builders import star, two_level


class TestSortingLowerBound:
    def test_balanced_star(self):
        tree = star(4, bandwidth=1.0)
        dist = Distribution(
            {f"v{i}": {"R": list(range(i * 100, i * 100 + 10))} for i in range(1, 5)}
        )
        bound = sorting_lower_bound(tree, dist)
        assert bound.value == 10.0  # min(10, 30) on each unit leaf link

    def test_slow_uplink(self):
        tree = two_level([2, 2], leaf_bandwidth=4.0, uplink_bandwidth=0.5)
        dist = Distribution(
            {f"v{i}": {"R": list(range(i * 50, i * 50 + 8))} for i in range(1, 5)}
        )
        bound = sorting_lower_bound(tree, dist)
        assert bound.value == 16 / 0.5  # rack split 16/16 over bw 0.5

    def test_empty_side_contributes_zero(self):
        tree = star(3)
        dist = Distribution({"v1": {"R": list(range(10))}})
        bound = sorting_lower_bound(tree, dist)
        # every split isolates empty nodes or v1: min is always 0
        assert bound.value == 0.0

    def test_only_requested_tag_counts(self):
        tree = star(2)
        dist = Distribution(
            {"v1": {"R": [1, 2], "X": list(range(100))},
             "v2": {"R": [3, 4]}}
        )
        bound = sorting_lower_bound(tree, dist, tag="R")
        assert bound.value == 2.0

    def test_adversarial_distribution_has_positive_bound(self):
        tree = two_level([3, 3])
        dist = adversarial_sorted_distribution(tree, total=600)
        bound = sorting_lower_bound(tree, dist)
        assert bound.value >= 300.0  # uplink split is 300/300 at bw 1

"""Unit tests for Algorithm 6 and the Lemma 9 guarantees."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sorting.proportional import proportional_quotas


class TestBasics:
    def test_exact_proportions(self):
        assert proportional_quotas([10, 20, 30], 6) == [1, 2, 3]

    def test_total_at_least_light_size(self):
        quotas = proportional_quotas([7, 13, 5], 23)
        assert sum(quotas) >= 23

    def test_zero_light_size(self):
        assert proportional_quotas([5, 5], 0) == [0, 0]

    def test_single_heavy_node(self):
        assert proportional_quotas([42], 17) == [17]

    def test_rejects_no_heavy_data(self):
        with pytest.raises(ValueError):
            proportional_quotas([0, 0], 5)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            proportional_quotas([-1, 2], 5)
        with pytest.raises(ValueError):
            proportional_quotas([1, 2], -5)

    def test_zero_weight_heavy_node_gets_nothing_extra(self):
        quotas = proportional_quotas([0, 10], 10)
        assert quotas[0] <= 1  # at most the rounding slack


HEAVY = st.lists(st.integers(0, 1000), min_size=1, max_size=12).filter(
    lambda sizes: sum(sizes) > 0
)


class TestLemma9:
    @given(heavy=HEAVY, light=st.integers(0, 500))
    @settings(max_examples=200)
    def test_property1_prefix_within_one(self, heavy, light):
        quotas = proportional_quotas(heavy, light)
        total = sum(heavy)
        prefix = 0
        ideal_prefix = 0.0
        for quota, size in zip(quotas, heavy):
            prefix += quota
            ideal_prefix += size / total * light
            assert prefix - 1 <= ideal_prefix + 1e-9
            assert ideal_prefix <= prefix + 1e-9

    @given(
        heavy=HEAVY,
        light=st.integers(0, 500),
        data=st.data(),
    )
    @settings(max_examples=200)
    def test_property2_range_within_one(self, heavy, light, data):
        quotas = proportional_quotas(heavy, light)
        total = sum(heavy)
        i = data.draw(st.integers(0, len(heavy) - 1))
        j = data.draw(st.integers(i, len(heavy) - 1))
        range_quota = sum(quotas[i : j + 1])
        ideal = sum(heavy[i : j + 1]) / total * light
        assert range_quota <= ideal + 1 + 1e-9

    @given(heavy=HEAVY, light=st.integers(0, 500))
    @settings(max_examples=200)
    def test_property3_quotas_suffice(self, heavy, light):
        assert sum(proportional_quotas(heavy, light)) >= light

    @given(heavy=HEAVY, light=st.integers(0, 500))
    @settings(max_examples=100)
    def test_credit_never_negative(self, heavy, light):
        # equivalent statement: every quota is floor(ideal) or floor+1
        import math

        quotas = proportional_quotas(heavy, light)
        total = sum(heavy)
        for quota, size in zip(quotas, heavy):
            ideal = size / total * light
            assert quota in (math.floor(ideal), math.floor(ideal) + 1)

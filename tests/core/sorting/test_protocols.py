"""Protocol-level tests for TeraSort and weighted TeraSort."""

import numpy as np
import pytest

from repro.core.sorting.lower_bound import sorting_lower_bound
from repro.core.sorting.ordering import verify_sorted_output
from repro.core.sorting.terasort import (
    sample_probability,
    select_splitters,
    terasort,
)
from repro.core.sorting.wts import heavy_threshold, weighted_terasort
from repro.data.distribution import Distribution
from repro.data.generators import (
    adversarial_sorted_distribution,
    distribute,
    make_sort_input,
    place_single_heavy,
    place_uniform,
    place_zipf,
)
from repro.topology.builders import star, two_level


def sorted_ok(tree, dist, result):
    verify_sorted_output(
        tree, result.outputs, result.meta["order"], dist.relation("R")
    )


class TestSamplingHelpers:
    def test_probability_clamped(self):
        assert sample_probability(10, 5) == 1.0
        assert 0 < sample_probability(4, 10**6) < 0.01

    def test_probability_of_empty_input(self):
        assert sample_probability(4, 0) == 0.0

    def test_select_splitters_uniform(self):
        samples = np.arange(100)
        splitters = select_splitters(samples, [1, 1, 1, 1])
        assert len(splitters) == 3
        assert splitters.tolist() == [24, 49, 74]

    def test_select_splitters_weighted(self):
        samples = np.arange(100)
        splitters = select_splitters(samples, [3, 1])
        # node 1 is responsible for 3 of 4 intervals
        assert len(splitters) == 1
        assert splitters[0] == 74

    def test_select_splitters_clamps_overflow(self):
        samples = np.arange(10)
        splitters = select_splitters(samples, [5, 5, 5])
        assert all(s <= 9 for s in splitters)

    def test_select_splitters_empty_samples(self):
        assert len(select_splitters(np.empty(0, np.int64), [1, 1])) == 0

    def test_heavy_threshold(self):
        assert heavy_threshold(4, 800) == 100.0


class TestTeraSort:
    @pytest.mark.parametrize("policy", [place_uniform, place_zipf])
    def test_sorts_correctly(self, any_topology, policy):
        nodes = any_topology.left_to_right_compute_order()
        values = make_sort_input(3000, seed=2)
        dist = distribute(values, policy(3000, nodes), tag="R", shuffle_seed=3)
        result = terasort(any_topology, dist, seed=1)
        sorted_ok(any_topology, dist, result)

    def test_three_rounds(self, simple_star):
        dist = distribute(
            make_sort_input(500, seed=0),
            place_uniform(500, simple_star.left_to_right_compute_order()),
            tag="R",
        )
        assert terasort(simple_star, dist, seed=0).rounds == 3

    def test_empty_input(self, simple_star):
        result = terasort(simple_star, Distribution({}), seed=0)
        assert all(len(v) == 0 for v in result.outputs.values())

    def test_handles_duplicates(self, simple_star):
        values = np.array([5] * 100 + [3] * 100 + [7] * 100)
        dist = distribute(
            values,
            place_uniform(300, simple_star.left_to_right_compute_order()),
            tag="R",
            shuffle_seed=1,
        )
        result = terasort(simple_star, dist, seed=4)
        sorted_ok(simple_star, dist, result)


class TestWeightedTeraSort:
    @pytest.mark.parametrize(
        "policy", [place_uniform, place_zipf, place_single_heavy]
    )
    def test_sorts_correctly(self, any_topology, policy):
        nodes = any_topology.left_to_right_compute_order()
        values = make_sort_input(3000, seed=5)
        dist = distribute(values, policy(3000, nodes), tag="R", shuffle_seed=6)
        result = weighted_terasort(any_topology, dist, seed=2)
        sorted_ok(any_topology, dist, result)

    def test_adversarial_placement(self, any_topology):
        dist = adversarial_sorted_distribution(any_topology, total=2000)
        result = weighted_terasort(any_topology, dist, seed=3)
        sorted_ok(any_topology, dist, result)

    def test_four_rounds_without_shortcut(self, simple_two_level):
        dist = distribute(
            make_sort_input(2000, seed=1),
            place_uniform(2000, simple_two_level.left_to_right_compute_order()),
            tag="R",
        )
        result = weighted_terasort(simple_two_level, dist, seed=0)
        assert result.rounds == 4
        assert result.meta["strategy"] == "wts"

    def test_gather_shortcut_on_dominant_node(self, simple_two_level):
        nodes = simple_two_level.left_to_right_compute_order()
        dist = distribute(
            make_sort_input(1000, seed=2),
            place_single_heavy(1000, nodes, heavy_fraction=0.9),
            tag="R",
        )
        result = weighted_terasort(simple_two_level, dist, seed=0)
        assert result.meta["strategy"] == "gather"
        assert result.rounds == 1
        sorted_ok(simple_two_level, dist, result)

    def test_gather_shortcut_can_be_disabled(self, simple_two_level):
        nodes = simple_two_level.left_to_right_compute_order()
        dist = distribute(
            make_sort_input(1000, seed=2),
            place_single_heavy(1000, nodes, heavy_fraction=0.9),
            tag="R",
        )
        result = weighted_terasort(
            simple_two_level, dist, seed=0, gather_shortcut=False
        )
        assert result.meta["strategy"] == "wts"
        sorted_ok(simple_two_level, dist, result)

    def test_light_nodes_end_empty(self, simple_two_level):
        nodes = simple_two_level.left_to_right_compute_order()
        dist = distribute(
            make_sort_input(2000, seed=3),
            place_zipf(2000, nodes, exponent=2.0),
            tag="R",
        )
        result = weighted_terasort(simple_two_level, dist, seed=1)
        if result.meta["strategy"] == "wts":
            for node in result.meta["light"]:
                assert len(result.outputs[node]) == 0

    def test_heavy_nodes_in_traversal_order(self, simple_two_level):
        dist = adversarial_sorted_distribution(simple_two_level, total=3000)
        result = weighted_terasort(simple_two_level, dist, seed=1)
        order = result.meta["order"]
        heavy = result.meta["heavy"]
        positions = [order.index(v) for v in heavy]
        assert positions == sorted(positions)

    def test_proportional_split_ablation_still_sorts(self, simple_two_level):
        dist = adversarial_sorted_distribution(simple_two_level, total=2000)
        result = weighted_terasort(
            simple_two_level, dist, seed=1, proportional_split=False
        )
        sorted_ok(simple_two_level, dist, result)

    def test_cost_within_constant_of_bound_at_scale(self):
        # Theorem 7 regime: N well above 4|V_C|^2 ln(|V_C| N).
        tree = two_level([3, 3], uplink_bandwidth=0.5)
        dist = adversarial_sorted_distribution(tree, total=60_000)
        result = weighted_terasort(tree, dist, seed=7)
        bound = sorting_lower_bound(tree, dist)
        assert result.cost <= 6 * bound.value

    def test_empty_input(self, simple_star):
        result = weighted_terasort(simple_star, Distribution({}), seed=0)
        assert result.meta["strategy"] == "empty"

    def test_single_node(self):
        tree = star(1)
        dist = Distribution({"v1": {"R": [3, 1, 2]}})
        result = weighted_terasort(tree, dist, seed=0)
        sorted_ok(tree, dist, result)
        assert result.cost == 0.0

    def test_deterministic_in_seed(self, simple_two_level):
        dist = adversarial_sorted_distribution(simple_two_level, total=1000)
        first = weighted_terasort(simple_two_level, dist, seed=9)
        second = weighted_terasort(simple_two_level, dist, seed=9)
        assert first.cost == second.cost

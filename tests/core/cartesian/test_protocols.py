"""Protocol-level tests: wHC, Algorithm 4, and the Theorem 5 tree protocol."""

import numpy as np
import pytest

from repro.core.cartesian.lower_bounds import cartesian_lower_bound
from repro.core.cartesian.star import star_cartesian_product
from repro.core.cartesian.tree import tree_cartesian_product
from repro.core.cartesian.whc import whc_cartesian_product, whc_dimensions
from repro.data.distribution import Distribution
from repro.data.generators import random_distribution
from repro.errors import ProtocolError
from repro.topology.builders import star, two_level
from repro.util.intmath import is_power_of_two


def total_pairs(result) -> int:
    return sum(o["num_pairs"] for o in result.outputs.values())


def materialized_pairs(result) -> set:
    pairs: set = set()
    for output in result.outputs.values():
        if "pairs" in output:
            pairs |= {tuple(p) for p in output["pairs"].tolist()}
    return pairs


class TestWhcDimensions:
    def test_power_of_two(self):
        dims = whc_dimensions({"a": 1.0, "b": 2.0, "c": 4.0}, 100)
        assert all(is_power_of_two(d) for d in dims.values())

    def test_proportional_to_bandwidth(self):
        dims = whc_dimensions({"a": 1.0, "b": 8.0}, 128)
        assert dims["b"] > dims["a"]

    def test_area_covers_n_squared(self):
        dims = whc_dimensions({"a": 1.0, "b": 2.0, "c": 2.0}, 60)
        assert sum(d * d for d in dims.values()) >= 60 * 60

    def test_rejects_infinite_bandwidth(self):
        with pytest.raises(ProtocolError):
            whc_dimensions({"a": float("inf")}, 10)

    def test_rejects_empty_input(self):
        with pytest.raises(ProtocolError):
            whc_dimensions({"a": 1.0}, 0)


class TestWhcProtocol:
    def test_enumerates_all_pairs_exactly_once(self, simple_star):
        dist = random_distribution(simple_star, r_size=40, s_size=40, seed=1)
        result = whc_cartesian_product(simple_star, dist)
        assert total_pairs(result) == 40 * 40

    def test_materialized_pairs_match_truth(self, simple_star):
        dist = random_distribution(simple_star, r_size=12, s_size=12, seed=2)
        result = whc_cartesian_product(simple_star, dist, materialize=True)
        truth = {
            (int(r), int(s))
            for r in dist.relation("R")
            for s in dist.relation("S")
        }
        assert materialized_pairs(result) == truth

    def test_single_round(self, simple_star):
        dist = random_distribution(simple_star, r_size=20, s_size=20, seed=0)
        assert whc_cartesian_product(simple_star, dist).rounds == 1

    def test_received_volume_tracks_bandwidth(self):
        tree = star(4, bandwidth=[1.0, 1.0, 8.0, 8.0])
        dist = random_distribution(
            tree, r_size=256, s_size=256, policy="uniform", seed=3
        )
        result = whc_cartesian_product(tree, dist)
        dims = result.meta["dims"]
        assert dims["v3"] > dims["v1"]

    def test_rejects_unequal_sizes(self, simple_star):
        dist = random_distribution(simple_star, r_size=10, s_size=20, seed=0)
        with pytest.raises(ProtocolError, match="unequal"):
            whc_cartesian_product(simple_star, dist)

    def test_rejects_non_star(self, simple_two_level):
        dist = random_distribution(
            simple_two_level, r_size=10, s_size=10, seed=0
        )
        with pytest.raises(ProtocolError, match="star"):
            whc_cartesian_product(simple_two_level, dist)

    def test_dims_override(self, simple_star):
        dist = random_distribution(simple_star, r_size=16, s_size=16, seed=1)
        dims = {v: 16 for v in simple_star.compute_nodes}
        result = whc_cartesian_product(simple_star, dist, dims=dims)
        assert total_pairs(result) == 256


class TestStarCartesianProduct:
    def test_gathers_when_one_node_dominates(self):
        tree = star(3)
        dist = Distribution(
            {
                "v1": {"R": list(range(40)), "S": list(range(100, 140))},
                "v2": {"R": list(range(40, 50)), "S": []},
                "v3": {"S": list(range(200, 210))},
            }
        )
        result = star_cartesian_product(tree, dist)
        assert result.meta["strategy"] == "gather"
        assert result.meta["target"] == "v1"
        assert total_pairs(result) == 50 * 50

    def test_whc_when_balanced(self, simple_star):
        dist = random_distribution(
            simple_star, r_size=40, s_size=40, policy="uniform", seed=2
        )
        result = star_cartesian_product(simple_star, dist)
        assert result.meta["strategy"] == "weighted-hypercube"

    def test_empty_instance(self, simple_star):
        result = star_cartesian_product(
            simple_star, Distribution({"v1": {"R": [], "S": []}})
        )
        assert total_pairs(result) == 0
        assert result.meta["strategy"] == "empty"

    def test_gather_cost_matches_lower_bound(self):
        tree = star(3, bandwidth=[1.0, 2.0, 4.0])
        dist = Distribution(
            {
                "v1": {"R": list(range(60)), "S": list(range(100, 160))},
                "v2": {"R": list(range(60, 70))},
                "v3": {"S": list(range(200, 210))},
            }
        )
        result = star_cartesian_product(tree, dist)
        bound = cartesian_lower_bound(tree, dist)
        assert result.cost <= 4 * bound.value


class TestTreeCartesianProduct:
    @pytest.mark.parametrize("policy", ["uniform", "zipf"])
    def test_all_pairs_on_any_topology(self, any_topology, policy):
        dist = random_distribution(
            any_topology, r_size=60, s_size=60, policy=policy, seed=4
        )
        result = tree_cartesian_product(any_topology, dist)
        assert total_pairs(result) == 3600
        assert result.rounds == 1

    def test_materialized_correctness_on_tree(self, simple_two_level):
        dist = random_distribution(
            simple_two_level, r_size=10, s_size=10, seed=5
        )
        result = tree_cartesian_product(
            simple_two_level, dist, materialize=True
        )
        truth = {
            (int(r), int(s))
            for r in dist.relation("R")
            for s in dist.relation("S")
        }
        assert materialized_pairs(result) == truth

    def test_gather_when_root_is_compute(self, simple_two_level):
        dist = random_distribution(
            simple_two_level, r_size=50, s_size=50,
            policy="single-heavy", heavy_fraction=0.9, seed=6,
        )
        result = tree_cartesian_product(simple_two_level, dist)
        assert result.meta["strategy"] == "gather-to-root"
        assert total_pairs(result) == 2500

    def test_cost_within_constant_of_lower_bound(self):
        for policy in ("uniform", "zipf", "proportional"):
            tree = two_level(
                [3, 3], leaf_bandwidth=[1.0, 4.0], uplink_bandwidth=2.0
            )
            dist = random_distribution(
                tree, r_size=400, s_size=400, policy=policy, seed=7
            )
            result = tree_cartesian_product(tree, dist)
            bound = cartesian_lower_bound(tree, dist)
            assert result.cost <= 4 * bound.value, policy

    def test_rejects_unequal_sizes(self, simple_two_level):
        dist = random_distribution(
            simple_two_level, r_size=10, s_size=30, seed=0
        )
        with pytest.raises(ProtocolError, match="unequal"):
            tree_cartesian_product(simple_two_level, dist)

    def test_empty_instance(self, simple_two_level):
        result = tree_cartesian_product(simple_two_level, Distribution({}))
        assert total_pairs(result) == 0

    def test_deterministic(self, simple_two_level):
        dist = random_distribution(
            simple_two_level, r_size=80, s_size=80, seed=8
        )
        first = tree_cartesian_product(simple_two_level, dist)
        second = tree_cartesian_product(simple_two_level, dist)
        assert first.cost == second.cost
        assert first.ledger.round_loads(0) == second.ledger.round_loads(0)

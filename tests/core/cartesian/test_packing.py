"""Unit tests for the square merging and placement (Lemma 5 / Figure 4)."""

import pytest

from repro.core.cartesian.packing import (
    RectTile,
    Tile,
    _SquareNode,
    _leaf_squares,
    coverage_report,
    merge_pool,
    pack_by_dagger,
    pack_flat,
)
from repro.errors import PackingError
from repro.topology.builders import star, two_level
from repro.topology.dagger import build_dagger


class TestTile:
    def test_ranges_clip_to_grid(self):
        tile = Tile(x0=6, y0=0, size=4)
        assert tile.r_range(8) == (6, 8)
        assert tile.s_range(8) == (0, 4)

    def test_fully_outside_grid(self):
        tile = Tile(x0=10, y0=10, size=4)
        assert tile.clipped_area(8, 8) == 0

    def test_rect_tile_ranges(self):
        tile = RectTile(x0=2, y0=3, width=5, height=1)
        assert tile.r_range(4) == (2, 4)
        assert tile.s_range(10) == (3, 4)
        assert tile.clipped_area(4, 10) == 2

    def test_width_height_of_square(self):
        tile = Tile(0, 0, 8)
        assert tile.width == tile.height == 8


class TestMergePool:
    def test_four_merge_into_one(self):
        squares = [_SquareNode(2, owner=i) for i in range(4)]
        merged = merge_pool(squares)
        assert len(merged) == 1
        assert merged[0].size == 4

    def test_at_most_three_per_size(self):
        squares = [_SquareNode(1, owner=i) for i in range(23)]
        merged = merge_pool(squares)
        counts: dict[int, int] = {}
        for square in merged:
            counts[square.size] = counts.get(square.size, 0) + 1
        assert all(count <= 3 for count in counts.values())

    def test_cascading_merges(self):
        squares = [_SquareNode(1, owner=i) for i in range(16)]
        merged = merge_pool(squares)
        assert len(merged) == 1
        assert merged[0].size == 4

    def test_total_area_preserved(self):
        squares = [_SquareNode(2 ** (i % 3), owner=i) for i in range(11)]
        before = sum(s.size**2 for s in squares)
        merged = merge_pool(squares)
        assert sum(s.size**2 for s in merged) == before

    def test_rejects_non_power_of_two(self):
        with pytest.raises(PackingError):
            merge_pool([_SquareNode(3, owner=0)])


class TestPackFlat:
    def test_tiles_disjoint_and_cover(self):
        dims = {f"v{i}": 4 for i in range(1, 5)}
        tiles = pack_flat(dims, 8, 8)
        report = coverage_report(tiles, 8, 8)
        assert report["grid_cells"] == 64
        cells = set()
        for tile in tiles.values():
            assert tile is not None
            for x in range(*tile.r_range(8)):
                for y in range(*tile.s_range(8)):
                    assert (x, y) not in cells
                    cells.add((x, y))
        assert len(cells) == 64

    def test_unused_leftovers_marked_none(self):
        dims = {"a": 8, "b": 1}  # the size-1 square cannot join the 8-square
        tiles = pack_flat(dims, 8, 8)
        assert tiles["a"] is not None
        assert tiles["b"] is None

    def test_insufficient_area_raises(self):
        with pytest.raises(PackingError, match="cover"):
            pack_flat({"a": 2, "b": 2}, 8, 8)

    def test_heterogeneous_sizes(self):
        dims = {"a": 4, "b": 2, "c": 2, "d": 2, "e": 2, "f": 4, "g": 4, "h": 4}
        tiles = pack_flat(dims, 8, 8)
        coverage_report(tiles, 8, 8)  # must not raise

    def test_empty_pool_rejected(self):
        with pytest.raises(PackingError):
            pack_flat({}, 4, 4)


class TestPackByDagger:
    def test_matches_grid_on_two_level(self):
        tree = two_level([2, 2])
        dagger = build_dagger(tree, {f"v{i}": 10 for i in range(1, 5)})
        dims = {f"v{i}": 4 for i in range(1, 5)}
        tiles = pack_by_dagger(dagger, dims, 8, 8)
        coverage_report(tiles, 8, 8)

    def test_subtree_tiles_are_grouped(self):
        # Rack 1's two squares merge together before meeting rack 2's,
        # so they occupy one contiguous 2x-square region.
        tree = two_level([2, 2])
        dagger = build_dagger(tree, {f"v{i}": 10 for i in range(1, 5)})
        dims = {f"v{i}": 4 for i in range(1, 5)}
        tiles = pack_by_dagger(dagger, dims, 8, 8)
        rack_one = [tiles["v1"], tiles["v2"]]
        xs = sorted(t.x0 for t in rack_one)
        ys = sorted(t.y0 for t in rack_one)
        # the two tiles are adjacent: they fit inside one 8x... 4x8 or 8x4 box
        assert (xs[1] - xs[0], ys[1] - ys[0]) in {(0, 4), (4, 0)}

    def test_on_star_equals_flat_coverage(self):
        tree = star(4)
        dagger = build_dagger(tree, {f"v{i}": 5 for i in range(1, 5)})
        dims = {f"v{i}": 4 for i in range(1, 5)}
        by_dagger = pack_by_dagger(dagger, dims, 8, 8)
        flat = pack_flat(dims, 8, 8)
        assert coverage_report(by_dagger, 8, 8) == coverage_report(flat, 8, 8)


class TestCoverageReport:
    def test_detects_hole(self):
        tiles = {"a": Tile(0, 0, 4)}
        with pytest.raises(PackingError, match="cover"):
            coverage_report(tiles, 8, 8)

    def test_reports_utilization(self):
        tiles = {"a": Tile(0, 0, 8)}
        report = coverage_report(tiles, 6, 6)
        assert report["grid_cells"] == 36
        assert report["overhang_cells"] == 64 - 36
        assert report["utilization"] == pytest.approx(36 / 64)

"""Unit tests for the output-grid labelling."""

import pytest

from repro.core.cartesian.grid import GridLabeling
from repro.data.distribution import Distribution
from repro.errors import ProtocolError
from repro.topology.builders import star


@pytest.fixture
def labeling():
    tree = star(3)
    dist = Distribution(
        {
            "v1": {"R": [10, 11], "S": [20]},
            "v2": {"R": [12], "S": [21, 22, 23]},
            "v3": {"R": [], "S": [24]},
        }
    )
    return GridLabeling.from_distribution(tree, dist)


class TestGridLabeling:
    def test_totals(self, labeling):
        assert labeling.r_total == 3
        assert labeling.s_total == 5

    def test_ranges_consecutive(self, labeling):
        order = labeling.node_order
        previous_end = 0
        for node in order:
            lo, hi = labeling.r_ranges[node]
            assert lo == previous_end
            previous_end = hi
        assert previous_end == labeling.r_total

    def test_empty_fragment_gets_empty_range(self, labeling):
        lo, hi = labeling.r_ranges["v3"]
        assert lo == hi

    def test_axis_accessors(self, labeling):
        assert labeling.ranges("r") == labeling.r_ranges
        assert labeling.total("s") == 5
        with pytest.raises(ProtocolError):
            labeling.ranges("x")
        with pytest.raises(ProtocolError):
            labeling.total("q")

    def test_owners_overlapping_full_span(self, labeling):
        owners = list(labeling.owners_overlapping("s", 0, 5))
        total = sum(hi - lo for (_, lo, hi) in owners)
        assert total == 5

    def test_owners_overlapping_partial(self, labeling):
        # S labels: v1 -> [0,1), v2 -> [1,4), v3 -> [4,5)
        owners = list(labeling.owners_overlapping("s", 2, 5))
        assert owners == [("v2", 1, 3), ("v3", 0, 1)]

    def test_owners_overlapping_empty_interval(self, labeling):
        assert list(labeling.owners_overlapping("r", 2, 2)) == []

    def test_local_slices_index_into_fragments(self, labeling):
        # R label 2 belongs to v2 at local index 0.
        ((node, lo, hi),) = list(labeling.owners_overlapping("r", 2, 3))
        assert node == "v2"
        assert (lo, hi) == (0, 1)

"""Unit tests for Algorithm 5 and the Lemma 8 invariants."""

import math

import pytest

from repro.core.cartesian.tree_packing import balanced_packing_tree
from repro.errors import ProtocolError
from repro.topology.builders import fat_tree, star, two_level
from repro.topology.dagger import build_dagger, optimal_cover
from repro.util.intmath import is_power_of_two


def make_plan(tree, weights=None):
    weights = weights or {v: 10 for v in tree.compute_nodes}
    dagger = build_dagger(tree, weights)
    total = sum(weights.values())
    return dagger, balanced_packing_tree(dagger, total), total


TOPOLOGIES = [
    star(4, bandwidth=[1, 2, 4, 8]),
    two_level([2, 3], leaf_bandwidth=[4.0, 1.0], uplink_bandwidth=[1.0, 2.0]),
    fat_tree(2, 2),
    two_level([3, 3], uplink_bandwidth=0.25),
]


class TestLemma8:
    @pytest.mark.parametrize("tree", TOPOLOGIES, ids=lambda t: t.name)
    def test_property1_wtilde_capped_by_own_link(self, tree):
        dagger, plan, _ = make_plan(tree)
        for node, value in plan.wtilde.items():
            if node != dagger.root:
                assert value <= dagger.out_bandwidth[node] + 1e-12

    @pytest.mark.parametrize("tree", TOPOLOGIES, ids=lambda t: t.name)
    def test_property2_share_capped(self, tree):
        dagger, plan, _ = make_plan(tree)
        root_value = plan.wtilde[dagger.root]
        for node, share in plan.share.items():
            assert share <= plan.wtilde[node] / root_value + 1e-12

    @pytest.mark.parametrize("tree", TOPOLOGIES, ids=lambda t: t.name)
    def test_property3_wtilde_root_is_optimal_cover_value(self, tree):
        dagger, plan, _ = make_plan(tree)
        _, cover_value = optimal_cover(dagger)
        assert plan.wtilde[dagger.root] == pytest.approx(cover_value)

    @pytest.mark.parametrize("tree", TOPOLOGIES, ids=lambda t: t.name)
    def test_property4_shares_square_to_one(self, tree):
        _, plan, _ = make_plan(tree)
        total = sum(
            plan.share[v] ** 2
            for v in plan.dims  # compute leaves
        )
        assert total == pytest.approx(1.0)


class TestDimensions:
    @pytest.mark.parametrize("tree", TOPOLOGIES, ids=lambda t: t.name)
    def test_dims_are_powers_of_two(self, tree):
        _, plan, _ = make_plan(tree)
        for dim in plan.dims.values():
            assert is_power_of_two(dim)

    @pytest.mark.parametrize("tree", TOPOLOGIES, ids=lambda t: t.name)
    def test_dims_within_analysis_envelope(self, tree):
        # Upper bound d_v <= 2 N l_v is what the per-link analysis uses;
        # the shrink pass may lower dims below N l_v, but never above.
        _, plan, total = make_plan(tree)
        for node, dim in plan.dims.items():
            assert dim <= max(1, 2 * total * plan.share[node])

    @pytest.mark.parametrize("tree", TOPOLOGIES, ids=lambda t: t.name)
    def test_total_area_covers_grid(self, tree):
        _, plan, total = make_plan(tree)
        assert sum(d * d for d in plan.dims.values()) >= total * total

    def test_dimension_accessor(self):
        tree = star(3)
        _, plan, _ = make_plan(tree)
        assert plan.dimension("v1") == plan.dims["v1"]


class TestPreconditions:
    def test_rejects_compute_root(self):
        tree = star(3)
        dagger = build_dagger(tree, {"v1": 100, "v2": 1, "v3": 1})
        assert dagger.root_is_compute
        with pytest.raises(ProtocolError, match="router"):
            balanced_packing_tree(dagger, 102)

    def test_rejects_empty_input(self):
        tree = star(3)
        dagger = build_dagger(tree, {v: 1 for v in tree.compute_nodes})
        with pytest.raises(ProtocolError, match="non-empty"):
            balanced_packing_tree(dagger, 0)

    def test_rejects_infinite_leaf_bandwidth(self):
        tree = star(3, bandwidth=[1.0, 1.0, math.inf])
        dagger = build_dagger(tree, {v: 2 for v in tree.compute_nodes})
        with pytest.raises(ProtocolError, match="infinite"):
            balanced_packing_tree(dagger, 6)

    def test_prunes_compute_free_subtrees(self):
        # A dangling high-bandwidth router leaf must not dilute shares.
        tree = two_level([2, 1], leaf_bandwidth=1.0, uplink_bandwidth=100.0)
        pruned_tree = tree.with_compute_nodes(["v1", "v2"])  # v3 now a router
        dagger = build_dagger(pruned_tree, {"v1": 10, "v2": 10})
        plan = balanced_packing_tree(dagger, 20)
        assert set(plan.dims) == {"v1", "v2"}
        assert sum(plan.share[v] ** 2 for v in plan.dims) == pytest.approx(1.0)

"""Unit tests for the geometric coverage verifier (overlapping tiles)."""

import pytest

from repro.core.cartesian.packing import (
    RectTile,
    Tile,
    assert_tiles_cover_grid,
)
from repro.errors import PackingError


class TestAssertTilesCoverGrid:
    def test_single_covering_tile(self):
        assert_tiles_cover_grid({"a": Tile(0, 0, 8)}, 8, 8)

    def test_exact_partition(self):
        tiles = {
            "a": Tile(0, 0, 4),
            "b": Tile(4, 0, 4),
            "c": Tile(0, 4, 4),
            "d": Tile(4, 4, 4),
        }
        assert_tiles_cover_grid(tiles, 8, 8)

    def test_overlapping_tiles_accepted(self):
        tiles = {
            "a": RectTile(0, 0, 6, 8),
            "b": RectTile(4, 0, 4, 8),
        }
        assert_tiles_cover_grid(tiles, 8, 8)

    def test_horizontal_hole_detected(self):
        tiles = {"a": RectTile(0, 0, 4, 8), "b": RectTile(5, 0, 3, 8)}
        with pytest.raises(PackingError, match="covered"):
            assert_tiles_cover_grid(tiles, 8, 8)

    def test_vertical_hole_detected(self):
        tiles = {"a": RectTile(0, 0, 8, 3), "b": RectTile(0, 5, 8, 3)}
        with pytest.raises(PackingError, match="covered up to row 3"):
            assert_tiles_cover_grid(tiles, 8, 8)

    def test_interior_gap_detected(self):
        tiles = {
            "a": RectTile(0, 0, 8, 2),
            "b": RectTile(0, 6, 8, 2),
            "c": RectTile(0, 2, 3, 4),  # covers rows 2..6 only for x<3
        }
        with pytest.raises(PackingError):
            assert_tiles_cover_grid(tiles, 8, 8)

    def test_overhang_beyond_grid_is_fine(self):
        assert_tiles_cover_grid({"a": Tile(0, 0, 64)}, 5, 7)

    def test_none_tiles_ignored(self):
        assert_tiles_cover_grid({"a": Tile(0, 0, 8), "b": None}, 8, 8)

    def test_empty_grid_trivially_covered(self):
        assert_tiles_cover_grid({}, 0, 5)
        assert_tiles_cover_grid({}, 5, 0)

    def test_empty_tiles_on_nonempty_grid_fails(self):
        with pytest.raises(PackingError):
            assert_tiles_cover_grid({}, 2, 2)

    def test_staircase_cover(self):
        # L-shaped covers like the Appendix packer produces
        tiles = {
            "big": RectTile(0, 0, 4, 4),
            "right": RectTile(4, 0, 4, 2),
            "right2": RectTile(4, 2, 4, 2),
            "top": RectTile(0, 4, 8, 4),
        }
        assert_tiles_cover_grid(tiles, 8, 8)

"""Unit tests for the cartesian-product lower bounds (Theorems 3 and 4)."""

import pytest

from repro.core.cartesian.lower_bounds import (
    cartesian_lower_bound,
    cartesian_lower_bound_cover,
    cartesian_lower_bound_flow,
)
from repro.data.distribution import Distribution
from repro.topology.builders import star, two_level


def balanced_star_instance(bandwidths):
    tree = star(len(bandwidths), bandwidth=bandwidths)
    n_per_node = 10
    placements = {}
    for i in range(1, len(bandwidths) + 1):
        placements[f"v{i}"] = {
            "R": list(range(i * 1000, i * 1000 + n_per_node // 2)),
            "S": list(range(i * 2000, i * 2000 + n_per_node // 2)),
        }
    return tree, Distribution(placements)


class TestFlowBound:
    def test_balanced_star(self):
        tree, dist = balanced_star_instance([1.0, 1.0, 1.0, 1.0])
        bound = cartesian_lower_bound_flow(tree, dist)
        # each leaf edge: min(10, 30) / 1 = 10
        assert bound.value == 10.0

    def test_slow_link_dominates(self):
        tree, dist = balanced_star_instance([0.1, 1.0, 1.0, 1.0])
        bound = cartesian_lower_bound_flow(tree, dist)
        assert bound.value == 10 / 0.1
        assert bound.bottleneck_edge == tree.canonical_edge("v1", "w")

    def test_uplink_bottleneck(self):
        tree = two_level([2, 2], leaf_bandwidth=5.0, uplink_bandwidth=0.5)
        dist = Distribution(
            {
                "v1": {"R": list(range(10))},
                "v3": {"S": list(range(100, 110))},
            }
        )
        bound = cartesian_lower_bound_flow(tree, dist)
        assert bound.value == 10 / 0.5

    def test_empty_distribution(self):
        tree = star(3)
        bound = cartesian_lower_bound_flow(tree, Distribution({}))
        assert bound.value == 0.0


class TestCoverBound:
    def test_uniform_star(self):
        tree, dist = balanced_star_instance([1.0] * 4)
        bound = cartesian_lower_bound_cover(tree, dist)
        # root is the hub; best cover = the 4 leaves: N / sqrt(4) = 40/2
        assert bound.value == pytest.approx(20.0)

    def test_inapplicable_when_root_is_compute(self):
        tree = star(3)
        dist = Distribution(
            {
                "v1": {"R": list(range(100))},
                "v2": {"S": [1]},
                "v3": {"S": [2]},
            }
        )
        bound = cartesian_lower_bound_cover(tree, dist)
        assert bound.value == 0.0
        assert "inapplicable" in bound.description

    def test_cover_can_beat_flow(self):
        # Uniform data, uniform bandwidth: flow gives N_v per edge, the
        # counting bound gives N/sqrt(p) which is larger for p < (p/2)^2.
        tree, dist = balanced_star_instance([1.0] * 9)
        flow = cartesian_lower_bound_flow(tree, dist)
        cover = cartesian_lower_bound_cover(tree, dist)
        assert cover.value > flow.value

    def test_internal_cover_on_three_racks(self):
        # Very fast leaf links, slow uplinks, three racks each below
        # half the data: G-dagger roots at the core and the best cover
        # sits at the rack routers, bounded by the uplink bandwidths.
        tree = two_level(
            [2, 2, 2], leaf_bandwidth=100.0, uplink_bandwidth=1.0
        )
        dist = Distribution(
            {
                f"v{i}": {"R": list(range(i * 100, i * 100 + 5)),
                          "S": list(range(i * 1000, i * 1000 + 5))}
                for i in range(1, 7)
            }
        )
        bound = cartesian_lower_bound_cover(tree, dist)
        # N = 60, cover = {w1, w2, w3}: 60 / sqrt(3)
        assert bound.value == pytest.approx(60 / 3**0.5)

    def test_empty_distribution(self):
        tree = star(3)
        bound = cartesian_lower_bound_cover(tree, Distribution({}))
        assert bound.value == 0.0


class TestCombinedBound:
    def test_takes_maximum(self):
        tree, dist = balanced_star_instance([1.0] * 9)
        combined = cartesian_lower_bound(tree, dist)
        flow = cartesian_lower_bound_flow(tree, dist)
        cover = cartesian_lower_bound_cover(tree, dist)
        assert combined.value == max(flow.value, cover.value)

    def test_description_names_the_winner(self):
        tree, dist = balanced_star_instance([1.0] * 9)
        combined = cartesian_lower_bound(tree, dist)
        assert "Theorem 4" in combined.description

"""Unit tests for the shrink pass and the axis-segment routing helper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cartesian.packing import (
    RectTile,
    Tile,
    shrink_dimensions,
)
from repro.core.cartesian.routing import axis_segments
from repro.errors import PackingError
from repro.util.intmath import is_power_of_two


class TestShrinkDimensions:
    def test_keeps_area_above_requirement(self):
        dims = {f"v{i}": 8192 for i in range(8)}
        shrunk = shrink_dimensions(dims, 12_000**2)
        assert sum(d * d for d in shrunk.values()) >= 12_000**2

    def test_never_grows(self):
        dims = {"a": 64, "b": 32, "c": 16}
        shrunk = shrink_dimensions(dims, 1)
        for node in dims:
            assert shrunk[node] <= dims[node]

    def test_reduces_maximum_when_budget_allows(self):
        # 8 * 8192^2 = 537M against a 64M budget: every square can
        # halve at least once, so the maximum must come down.
        dims = {f"v{i}": 8192 for i in range(8)}
        shrunk = shrink_dimensions(dims, 8_000**2)
        assert max(shrunk.values()) < 8192

    def test_stops_at_first_infeasible_maximum(self):
        # 144M budget: only seven of the eight 8192-squares can halve;
        # the eighth must stay, and the pass stops there by design.
        dims = {f"v{i}": 8192 for i in range(8)}
        shrunk = shrink_dimensions(dims, 12_000**2)
        at_max = [v for v, d in shrunk.items() if d == 8192]
        assert len(at_max) == 1
        assert sum(d * d for d in shrunk.values()) >= 12_000**2

    def test_stays_balanced(self):
        # Only current-maximum squares are halved, so dims never spread
        # by more than one extra binade relative to the input spread.
        dims = {"a": 512, "b": 512, "c": 64, "d": 64}
        shrunk = shrink_dimensions(dims, 512 * 512)
        assert min(shrunk["a"], shrunk["b"]) >= shrunk["c"]

    def test_noop_when_tight(self):
        dims = {"a": 4, "b": 4}
        assert shrink_dimensions(dims, 32) == dims

    def test_dims_stay_powers_of_two(self):
        dims = {f"v{i}": 2 ** (5 + i % 3) for i in range(9)}
        shrunk = shrink_dimensions(dims, 500)
        assert all(is_power_of_two(d) for d in shrunk.values())

    def test_minimum_dimension_is_one(self):
        shrunk = shrink_dimensions({"a": 8}, 0)
        assert shrunk["a"] == 1

    @given(
        dims=st.lists(
            st.integers(0, 8).map(lambda k: 2**k), min_size=1, max_size=10
        ),
        requirement=st.integers(0, 4096),
    )
    @settings(max_examples=100)
    def test_invariants_on_random_pools(self, dims, requirement):
        pool = {f"v{i}": d for i, d in enumerate(dims)}
        initial_area = sum(d * d for d in dims)
        shrunk = shrink_dimensions(pool, requirement)
        area = sum(d * d for d in shrunk.values())
        if initial_area >= requirement:
            assert area >= requirement
        for node in pool:
            assert 1 <= shrunk[node] <= pool[node]
            assert is_power_of_two(shrunk[node])


class TestAxisSegments:
    def test_single_tile_single_segment(self):
        segments = axis_segments({"a": Tile(0, 0, 8)}, "r", 8)
        assert segments == [(0, 8, frozenset({"a"}))]

    def test_stacked_tiles_share_column_range(self):
        tiles = {"a": Tile(0, 0, 4), "b": Tile(0, 4, 4)}
        segments = axis_segments(tiles, "r", 4)
        assert segments == [(0, 4, frozenset({"a", "b"}))]

    def test_adjacent_tiles_split_segments(self):
        tiles = {"a": Tile(0, 0, 4), "b": Tile(4, 0, 4)}
        segments = axis_segments(tiles, "r", 8)
        assert segments == [
            (0, 4, frozenset({"a"})),
            (4, 8, frozenset({"b"})),
        ]

    def test_partial_overlap_produces_three_segments(self):
        tiles = {
            "a": RectTile(0, 0, 6, 1),
            "b": RectTile(4, 0, 4, 1),
        }
        segments = axis_segments(tiles, "r", 8)
        assert segments == [
            (0, 4, frozenset({"a"})),
            (4, 6, frozenset({"a", "b"})),
            (6, 8, frozenset({"b"})),
        ]

    def test_uncovered_labels_raise(self):
        with pytest.raises(PackingError, match="no destination"):
            axis_segments({"a": Tile(0, 0, 4)}, "r", 8)

    def test_none_tiles_ignored(self):
        tiles = {"a": Tile(0, 0, 8), "b": None}
        segments = axis_segments(tiles, "s", 8)
        assert segments == [(0, 8, frozenset({"a"}))]

    def test_clipping_to_grid(self):
        segments = axis_segments({"a": Tile(0, 0, 16)}, "r", 5)
        assert segments == [(0, 5, frozenset({"a"}))]

"""Tests for the unequal-size cartesian product (Appendix A.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cartesian.packing import assert_tiles_cover_grid
from repro.core.cartesian.unequal import (
    balanced_packing_unequal,
    generalized_star_cartesian_product,
    l_star,
    unequal_cartesian_lower_bound,
    unequal_lower_bound_counting,
    unequal_lower_bound_flow,
)
from repro.data.distribution import Distribution
from repro.data.generators import random_distribution
from repro.errors import PackingError, ProtocolError
from repro.topology.builders import star, two_level


class TestLStar:
    def test_satisfies_inequality(self):
        widths = [1.0, 2.0, 4.0]
        scale = l_star(100, 400, widths)
        supply = sum(min(scale * w, 100) * scale * w for w in widths)
        assert supply >= 100 * 400 * (1 - 1e-9)

    def test_is_minimal(self):
        widths = [1.0, 2.0, 4.0]
        scale = l_star(100, 400, widths)
        smaller = scale * 0.99
        supply = sum(min(smaller * w, 100) * smaller * w for w in widths)
        assert supply < 100 * 400

    def test_equal_case_matches_closed_form(self):
        # With C*w < |R| everywhere, (2) reads C^2 sum w^2 >= |R||S|.
        widths = [1.0, 1.0, 1.0, 1.0]
        scale = l_star(1000, 1000, widths)
        assert scale == pytest.approx((1000 * 1000 / 4) ** 0.5, rel=1e-6)

    def test_empty_grid(self):
        assert l_star(0, 100, [1.0]) == 0.0

    def test_rejects_infinite_bandwidth(self):
        with pytest.raises(ProtocolError):
            l_star(10, 10, [float("inf")])

    @given(
        r=st.integers(1, 200),
        s=st.integers(1, 400),
        widths=st.lists(st.sampled_from([0.5, 1.0, 2.0, 8.0]), min_size=1, max_size=6),
    )
    @settings(max_examples=80)
    def test_monotone_in_sizes(self, r, s, widths):
        small = l_star(r, s, widths)
        bigger = l_star(r, 2 * s, widths)
        assert bigger >= small - 1e-9


class TestLowerBounds:
    def make_instance(self):
        tree = star(4, bandwidth=[1.0, 2.0, 4.0, 8.0])
        dist = random_distribution(tree, r_size=100, s_size=900, seed=3)
        return tree, dist

    def test_flow_bound_caps_at_r(self):
        tree = star(2, bandwidth=1.0)
        dist = Distribution(
            {
                "v1": {"R": list(range(10)), "S": list(range(100, 400))},
                "v2": {"S": list(range(1000, 1400))},
            }
        )
        bound = unequal_lower_bound_flow(tree, dist)
        assert bound.value == 10.0  # min(N_v, N - N_v, |R|) = |R|

    def test_counting_bound_inapplicable_with_dominant_node(self):
        tree = star(2)
        dist = Distribution(
            {
                "v1": {"R": list(range(10)), "S": list(range(100, 800))},
                "v2": {"S": list(range(1000, 1010))},
            }
        )
        bound = unequal_lower_bound_counting(tree, dist)
        assert bound.value == 0.0

    def test_combined_takes_max(self):
        tree, dist = self.make_instance()
        combined = unequal_cartesian_lower_bound(tree, dist)
        flow = unequal_lower_bound_flow(tree, dist)
        counting = unequal_lower_bound_counting(tree, dist)
        assert combined.value == max(flow.value, counting.value)

    def test_counting_positive_when_alpha_nonempty(self):
        # Skewed placement: the light nodes fall into Vα and the
        # counting terms become non-trivial.
        tree = star(4)
        dist = random_distribution(
            tree, r_size=200, s_size=1000, policy="zipf",
            zipf_exponent=1.0, seed=5,
        )
        bound = unequal_lower_bound_counting(tree, dist)
        assert bound.value > 0

    def test_counting_vacuous_when_alpha_empty(self):
        # Uniform placement with every node above |R|: Vα is empty and
        # Theorem 9's sum over Vα is vacuous — the theorem then gives
        # no information (Theorem 8 covers this regime instead).
        tree = star(4)
        dist = random_distribution(
            tree, r_size=200, s_size=1000, policy="uniform", seed=5
        )
        bound = unequal_lower_bound_counting(tree, dist)
        assert bound.value == 0.0
        flow = unequal_lower_bound_flow(tree, dist)
        assert flow.value >= 200.0  # |R| per unit-bandwidth link


class TestBalancedPackingUnequal:
    def test_covers_grid(self):
        tiles, _ = balanced_packing_unequal(
            {"a": 1.0, "b": 2.0, "c": 4.0}, 50, 400
        )
        assert_tiles_cover_grid(tiles, 50, 400)

    def test_fast_node_gets_slab(self):
        tiles, scale = balanced_packing_unequal(
            {"a": 100.0, "b": 1.0, "c": 1.0}, 20, 500
        )
        assert tiles["a"] is not None
        assert tiles["a"].width == 20  # full |R| width

    def test_empty_grid(self):
        tiles, scale = balanced_packing_unequal({"a": 1.0}, 0, 10)
        assert tiles == {"a": None}
        assert scale == 0.0

    def test_wide_grid_transposed(self):
        # Sub-grids from Algorithm 8 can be wider than tall; the packer
        # transposes internally and still covers.
        tiles, _ = balanced_packing_unequal(
            {"a": 1.0, "b": 2.0, "c": 4.0}, 400, 50
        )
        assert_tiles_cover_grid(tiles, 400, 50)

    @given(
        r=st.integers(1, 60),
        s_factor=st.integers(1, 8),
        widths=st.lists(
            st.sampled_from([0.5, 1.0, 2.0, 4.0, 16.0]),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_always_covers(self, r, s_factor, widths):
        s = r * s_factor
        bandwidths = {f"v{i}": w for i, w in enumerate(widths)}
        tiles, _ = balanced_packing_unequal(bandwidths, r, s)
        assert_tiles_cover_grid(tiles, r, s)


class TestGeneralizedStarCartesianProduct:
    def run_and_check(self, tree, dist, r_size, s_size):
        result = generalized_star_cartesian_product(tree, dist)
        produced = sum(o["num_pairs"] for o in result.outputs.values())
        assert produced >= r_size * s_size
        return result

    def test_unequal_sizes_handled(self):
        tree = star(5, bandwidth=[1, 2, 4, 2, 1])
        dist = random_distribution(tree, r_size=100, s_size=1500, seed=7)
        result = self.run_and_check(tree, dist, 100, 1500)
        assert result.rounds == 1
        assert "candidates" in result.meta or "target" in result.meta

    def test_dominant_node_gathers(self):
        tree = star(3)
        dist = random_distribution(
            tree, r_size=50, s_size=950,
            policy="single-heavy", heavy_fraction=0.9, seed=8,
        )
        result = self.run_and_check(tree, dist, 50, 950)
        assert result.meta["strategy"] == "gather-dominant"

    def test_swapped_relations(self):
        tree = star(4)
        dist = random_distribution(tree, r_size=800, s_size=100, seed=9)
        result = self.run_and_check(tree, dist, 800, 100)
        assert result.meta.get("swapped_relations")

    def test_cost_within_constant_of_bound(self):
        for policy in ("uniform", "zipf"):
            tree = star(6, bandwidth=[1, 1, 2, 2, 4, 4])
            dist = random_distribution(
                tree, r_size=300, s_size=3000, policy=policy, seed=11
            )
            result = generalized_star_cartesian_product(tree, dist)
            bound = unequal_cartesian_lower_bound(tree, dist)
            assert result.cost <= 8 * bound.value, (policy, result.meta)

    def test_picks_cheapest_candidate(self):
        tree = star(5, bandwidth=[8, 4, 2, 1, 1])
        dist = random_distribution(tree, r_size=200, s_size=1200, seed=13)
        result = generalized_star_cartesian_product(tree, dist)
        candidates = result.meta.get("candidates")
        if candidates:
            assert result.cost == min(candidates.values())

    def test_rejects_non_star(self):
        tree = two_level([2, 2])
        dist = random_distribution(tree, r_size=10, s_size=40, seed=1)
        with pytest.raises(ProtocolError, match="star"):
            generalized_star_cartesian_product(tree, dist)

    def test_empty_instance(self):
        tree = star(2)
        result = generalized_star_cartesian_product(
            tree, Distribution({"v1": {"R": [], "S": []}})
        )
        assert result.meta["strategy"] == "empty"

    def test_equal_sizes_also_work(self):
        tree = star(4)
        dist = random_distribution(tree, r_size=200, s_size=200, seed=15)
        self.run_and_check(tree, dist, 200, 200)

    @given(
        r=st.integers(1, 40),
        s=st.integers(1, 120),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_all_pairs_enumerated(self, r, s, seed):
        tree = star(4, bandwidth=[1.0, 2.0, 4.0, 8.0])
        dist = random_distribution(tree, r_size=r, s_size=s, seed=seed)
        result = generalized_star_cartesian_product(tree, dist)
        produced = sum(o["num_pairs"] for o in result.outputs.values())
        assert produced >= r * s

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.topology.builders import caterpillar, fat_tree, star, two_level


@pytest.fixture
def simple_star():
    """A 4-node star with heterogeneous bandwidths."""
    return star(4, bandwidth=[1.0, 2.0, 4.0, 8.0])


@pytest.fixture
def simple_two_level():
    """Figure 1b: two racks under a core router."""
    return two_level([2, 3], leaf_bandwidth=2.0, uplink_bandwidth=1.0)


@pytest.fixture(
    params=[
        ("star", lambda: star(5, bandwidth=[1, 2, 4, 2, 1])),
        ("two-level", lambda: two_level([3, 2], uplink_bandwidth=0.5)),
        ("fat-tree", lambda: fat_tree(2, 2)),
        ("caterpillar", lambda: caterpillar(3, 2)),
    ],
    ids=lambda p: p[0],
)
def any_topology(request):
    """One of each builder family, for protocol smoke tests."""
    return request.param[1]()

#!/usr/bin/env python3
"""Walkthrough: topology-aware graph analytics end to end.

The MPC connectivity literature solves graph problems by iterating
shuffle/aggregate supersteps; this example runs that workload family
on the paper's cost model, on a heterogeneous two-rack cluster:

1. place a planted-components graph on the cluster (edges as packed
   64-bit elements, Zipf-skewed across nodes),
2. run hash-to-min connected components through the superstep driver
   and inspect the per-superstep cost table (``GraphRunReport``),
3. verify the labelling against the single-machine union-find
   reference,
4. compare the topology-aware protocol against the textbook
   uniform-hash MPC formulation and the gather baseline,
5. count triangles through the query planner (two equi-join stages)
   and aggregate degrees with one registered group-by round — so the
   new subsystem's wins are numbers, not claims.

Run:  python examples/graph_analytics.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.graphs import (
    PlacedGraph,
    reference_components,
    reference_triangle_count,
    run_components,
    run_degrees,
    run_triangles,
)
from repro.util.text import render_table


def main() -> None:
    tree = repro.two_level(
        [4, 4], leaf_bandwidth=[8.0, 1.0], uplink_bandwidth=[8.0, 1.0],
        name="two racks",
    )

    # Three planted components of 60 vertices each; edges land on the
    # cluster Zipf-skewed (most of the graph on a few nodes — the
    # regime where placement-aware shuffles pay off).
    edges = repro.planted_components_graph(3, 60, seed=11)
    graph = PlacedGraph.from_edges(tree, edges, policy="zipf", seed=11)
    print(graph.describe())
    print()

    # Connected components: every superstep is a registered group-by
    # shuffle plus a label-return round, all on one master ledger.
    report = run_components(tree, graph, protocol="tree", seed=1)
    print(report.summarize())
    print()

    # The engine already verified the run; check once more explicitly
    # against the single-machine reference.
    expected = reference_components(graph.edges())
    assert report.converged
    assert len(expected) == report.num_vertices
    print(
        f"Labelling verified against union-find: "
        f"{len(set(expected.values()))} components over "
        f"{report.num_vertices} vertices in {report.num_supersteps} steps."
    )
    print()

    # Topology-aware vs the MPC baselines, same instance.
    rows = []
    for protocol in ("tree", "uniform-hash", "gather"):
        flavour = run_components(tree, graph, protocol=protocol, seed=1)
        rows.append(
            [
                protocol,
                f"{flavour.cost:.0f}",
                flavour.rounds,
                f"{flavour.ratio:.1f}",
            ]
        )
    print(
        render_table(
            ["protocol", "cost", "rounds", "cost / bound"],
            rows,
            title=f"Connected components on '{tree.name}'",
        )
    )
    print()

    # Triangle counting: compiled as two equi-join stages through the
    # query planner; the optimized flavour picks a registered equi-join
    # protocol per stage from cost estimates.
    triangles = run_triangles(tree, graph, protocol="optimized", seed=1)
    assert triangles.meta["num_triangles"] == reference_triangle_count(
        graph.edges()
    )
    print(triangles.summarize())
    print()

    # Degrees: one registered group-by round, no new protocol at all.
    degrees = run_degrees(tree, graph, seed=1)
    print(
        f"Degree aggregation: cost {degrees.cost:.0f} vs shared-key "
        f"bound {degrees.lower_bound:.0f} "
        f"(ratio {degrees.ratio:.2f}, {degrees.rounds} round)."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Sorting on a heterogeneous cluster: weighted vs classic TeraSort.

A mixed cluster — one rack of fast machines on 4x links, one rack of
slow ones on 1x links — holds data proportionally to machine capability.
Classic TeraSort splits the key space evenly, forcing the slow machines
to absorb as much data as the fast ones; the paper's weighted TeraSort
(Section 5.2) splits proportionally to the data each heavy node holds
and moves light nodes' data with Algorithm 6.

The script also reruns both protocols on the adversarial rank-interleaved
placement from the Theorem 6 proof (Figure 5), where the lower bound is
tight, and prints cost/bound ratios.

Run:  python examples/heterogeneous_sort.py
"""

from __future__ import annotations

import repro
from repro.util.text import render_table


def main() -> None:
    tree = repro.two_level(
        [4, 4],
        leaf_bandwidth=[4.0, 1.0],
        uplink_bandwidth=[4.0, 1.0],
        name="mixed-racks",
    )
    print(repro.ascii_tree(tree))
    print()

    total = 40_000
    nodes = tree.left_to_right_compute_order()
    uplink = {v: tree.bandwidth(v, tree.neighbors(v)[0]) for v in nodes}

    scenarios = {
        "capability-proportional": repro.distribute(
            repro.make_sort_input(total, seed=5),
            repro.place_proportional(total, nodes, uplink),
            tag="R",
            shuffle_seed=6,
        ),
        "adversarial (Thm 6)": repro.adversarial_sorted_distribution(
            tree, total=total
        ),
    }

    rows = []
    for name, dist in scenarios.items():
        bound = repro.sorting_lower_bound(tree, dist)
        wts = repro.run("sorting", tree, dist, protocol="wts", seed=2,
                        placement=name)
        classic = repro.run("sorting", tree, dist, protocol="terasort",
                            seed=2, placement=name)
        rows.append(
            [
                name,
                bound.value,
                wts.cost,
                f"{wts.ratio:.2f}",
                classic.cost,
                f"{classic.ratio:.2f}",
            ]
        )
    print(
        render_table(
            [
                "placement",
                "Theorem 6 bound",
                "wTS cost",
                "wTS ratio",
                "TeraSort cost",
                "TeraSort ratio",
            ],
            rows,
            title=f"Sorting {total} elements on mixed racks (4 rounds, w.h.p.)",
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The MPC model as a special case of the topology-aware model (Sec. 2.2).

Encodes the MPC model as an asymmetric star — infinite uplinks, unit
downlinks — and demonstrates that the topology-aware round cost is then
exactly the MPC measure (maximum data received per machine).  Then runs
the classic uniform hash join under both the MPC star and a *symmetric*
heterogeneous star to show why topology-awareness matters: the identical
traffic pattern costs 4x more when one link is 4x slower, something the
MPC model cannot express.

Run:  python examples/mpc_special_case.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.mpc import mpc_star, verify_mpc_equivalence
from repro.sim.cluster import Cluster


def main() -> None:
    p = 6
    tree = mpc_star(p)
    print("The MPC star (infinite uplinks, unit downlinks):")
    print(repro.ascii_tree(tree, root="o"))
    print()

    # Any communication pattern: cost == max received.
    cluster = Cluster(tree)
    rng = np.random.default_rng(0)
    with cluster.round() as ctx:
        for i in range(1, p + 1):
            for j in range(1, p + 1):
                if i != j:
                    ctx.send(
                        f"v{i}",
                        f"v{j}",
                        np.arange(rng.integers(1, 50)),
                        tag="x",
                    )
    pairs = verify_mpc_equivalence(cluster)
    print(
        "Random all-to-all round: topology-aware cost "
        f"{pairs[0][0]:.0f} == max-received {pairs[0][1]:.0f}  (Section 2.2)"
    )
    print()

    # Same algorithm, same traffic — different networks.
    dist_seed = 5
    uniform_star = repro.star(p, bandwidth=1.0, name="symmetric-star")
    slow_star = repro.star(
        p, bandwidth=[1.0] * (p - 1) + [0.25], name="one-slow-link"
    )
    dist = repro.random_distribution(
        uniform_star, r_size=3_000, s_size=3_000, seed=dist_seed
    )
    base = repro.uniform_hash_intersect(uniform_star, dist, seed=1)
    slow = repro.uniform_hash_intersect(slow_star, dist, seed=1)
    aware = repro.tree_intersect(slow_star, dist, seed=1)
    print("Uniform hash join, identical traffic, two networks:")
    print(f"  uniform star:          cost {base.cost:8.1f}")
    print(f"  one 4x-slower link:    cost {slow.cost:8.1f}   (MPC-blind)")
    print(f"  TreeIntersect, same net: cost {aware.cost:8.1f}   (topology-aware)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Distributed join on a fat tree: topology-aware vs MPC-style hashing.

The motivating scenario from the paper's introduction: a join (here, its
communication core — set intersection) runs on a datacenter fat tree
whose upper links are oversubscribed, with the build side much smaller
than the probe side and data skewed across racks.  The classic MPC
approach hashes both relations uniformly across all machines; the
paper's TreeIntersect instead replicates the small relation along the
balanced partition and hashes the big one only within its own block.

The script sweeps the oversubscription factor and prints both costs and
the Theorem 1 lower bound — showing the topology-aware algorithm
tracking the bound while the uniform hash join degrades with the
network.

Run:  python examples/datacenter_join.py
"""

from __future__ import annotations

import repro
from repro.util.text import render_table


def build_fat_tree(oversubscription: float) -> repro.TreeTopology:
    """A 2-level, 3-ary fat tree; upper links carry 3/oversubscription."""
    return repro.fat_tree(
        2,
        3,
        leaf_bandwidth=1.0,
        level_scale=3.0 / oversubscription,
        name=f"fat-tree(os={oversubscription:g})",
    )


def main() -> None:
    rows = []
    for oversubscription in (1.0, 2.0, 4.0, 8.0):
        tree = build_fat_tree(oversubscription)
        dist = repro.random_distribution(
            tree,
            r_size=1_000,       # small build side
            s_size=20_000,      # large probe side
            intersection_size=400,
            policy="zipf",
            seed=11,
        )
        bound = repro.intersection_lower_bound(tree, dist)
        aware = repro.tree_intersect(tree, dist, seed=3)
        agnostic = repro.uniform_hash_intersect(tree, dist, seed=3)
        rows.append(
            [
                f"{oversubscription:g}x",
                bound.value,
                aware.cost,
                agnostic.cost,
                agnostic.cost / aware.cost,
            ]
        )
    print(
        render_table(
            [
                "oversubscription",
                "Theorem 1 bound",
                "TreeIntersect",
                "uniform hash",
                "speedup",
            ],
            rows,
            title="Join communication cost on an oversubscribed fat tree "
            "(|R|=1k, |S|=20k, zipf placement)",
        )
    )
    print()
    print(
        "TreeIntersect stays within a small factor of the lower bound at "
        "every oversubscription level; uniform hashing pays the full "
        "probe-side shuffle across the weakened core."
    )


if __name__ == "__main__":
    main()

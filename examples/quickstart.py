#!/usr/bin/env python3
"""Quickstart: all three tasks on one topology, costs vs lower bounds.

Builds the Figure 1b two-level tree, places a skewed workload on it, and
runs the paper's three algorithms (TreeIntersect, the Theorem 5 cartesian
product, weighted TeraSort) plus their lower bounds — printing, for each
task, the round count and the cost/bound ratio that Table 1 promises is
a constant (or polylog for intersection).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # A small datacenter: two racks of four machines, rack uplinks half
    # as fast as the access links.
    tree = repro.two_level(
        [4, 4], leaf_bandwidth=2.0, uplink_bandwidth=1.0, name="quickstart"
    )
    print("Topology (compute nodes in brackets, link bandwidths on edges):")
    print(repro.ascii_tree(tree))
    print()

    # A skewed initial placement: earlier nodes hold more data.
    dist = repro.random_distribution(
        tree, r_size=2_000, s_size=2_000, policy="zipf", seed=7
    )
    print("Initial placement:")
    print(dist.describe())
    print()

    # One engine call per task: repro.run dispatches through the protocol
    # registry, so the same entry point covers every task and protocol
    # (run ``python -m repro protocols`` for the catalog).  run_many
    # evaluates the batch concurrently and preserves order.
    reports = repro.run_many(
        [
            repro.RunPlan(task, tree, dist, seed=1, placement="zipf")
            for task in ("set-intersection", "cartesian-product", "sorting")
        ]
    )
    print(
        repro.summarize_reports(
            reports, title="Topology-aware algorithms vs their lower bounds"
        )
    )
    print()
    print(
        "Table 1 check: intersection ran in "
        f"{reports[0].rounds} round, cartesian product in "
        f"{reports[1].rounds} round, sorting in {reports[2].rounds} rounds; "
        "every ratio is a small constant."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Walkthrough: serving many queries from one warm engine session.

The paper's cost model is parameterized entirely by the network
topology — which makes the topology the natural unit of *session*
state for a serving engine.  This example stands up an
:class:`repro.EngineSession` pinned to a fat tree and drives it the
way a multi-tenant query service would:

1. single warm runs (``session.run``): topology artifacts — routing
   index, Steiner memos, compute orders — are built once at session
   construction and shared by every query;
2. cached plan queries (``session.run_plan``): the second execution of
   a query shape skips the optimizer's join-order and protocol search
   entirely (watch the plan-cache hit counter);
3. a served batch (``session.run_many``) with the serve layer's two
   traffic controls — *lower-bound admission* (queries whose certified
   minimum cost exceeds the budget are rejected before running) and
   *cheapest-bound-first scheduling*;
4. the cold-vs-warm comparison: the same query through the stateless
   one-shot engine, byte-identical answer, measurably slower.

Run:  python examples/serve_queries.py
"""

from __future__ import annotations

import time

import repro
from repro.plan import chain_catalog, chain_query
from repro.util.text import render_table


def main() -> None:
    tree = repro.fat_tree(2, 4, name="serving fabric")
    placements = [("zipf", 0), ("uniform", 1), ("zipf", 2)]
    workload = [
        repro.random_distribution(
            tree, r_size=400, s_size=400, policy=policy, seed=seed
        )
        for policy, seed in placements
    ]
    catalog = chain_catalog(tree, num_relations=3, rows=400, seed=0)

    # -- 1. a warm session: artifacts built once, at construction ------
    with repro.EngineSession(tree, catalog=catalog) as session:
        rows = []
        for (policy, seed), dist in zip(placements, workload):
            for task in ("set-intersection", "equijoin"):
                report = session.run(task, dist)
                rows.append(
                    [
                        task,
                        f"{policy} (seed {seed})",
                        f"{report.cost:.0f}",
                        report.rounds,
                    ]
                )
        print(
            render_table(
                ["task", "placement", "cost", "rounds"],
                rows,
                title=f"Warm task runs on {tree.name}",
            )
        )
        print()

        # -- 2. plan caching: second compile is a lookup ---------------
        query = chain_query(3)
        first = session.run_plan(query)
        again = session.run_plan(query)
        stats = session.plan_cache.stats()
        print(
            f"plan query twice: cost {first.cost:.0f} then "
            f"{again.cost:.0f} (identical), plan cache "
            f"{stats['hits']} hit / {stats['misses']} miss"
        )
        print()

        # -- 3. a served batch with admission + scheduling -------------
        batch = [
            {"task": "set-intersection", "distribution": workload[0]},
            {"task": "cartesian-product", "distribution": workload[1]},
            {"task": "sorting", "distribution": workload[2]},
        ]
        # Every task carries a certified lower bound — a promise, not
        # an estimate.  A tight budget rejects the most expensive
        # certified query before spending anything on it; the admitted
        # rest run cheapest bound first.
        bounds = [session.lower_bound(plan) for plan in batch]
        budget = sorted(bounds)[1] + 1  # admit the two cheapest
        reports = session.run_many(batch, max_bound=budget)
        rows = [
            [
                plan["task"],
                f"{bound:.0f}",
                "rejected" if report is None else f"cost {report.cost:.0f}",
            ]
            for plan, bound, report in zip(batch, bounds, reports)
        ]
        print(
            render_table(
                ["task", "lower bound", "outcome"],
                rows,
                title=f"Served batch (admission budget {budget:.0f})",
            )
        )
        print()
        summary = session.summary()

    # -- 4. cold twin: same answer, rebuilt state ----------------------
    started = time.perf_counter()
    cold = repro.run("set-intersection", tree, workload[0])
    cold_s = time.perf_counter() - started
    with repro.EngineSession(tree) as session:
        started = time.perf_counter()
        warm_report = session.run("set-intersection", workload[0])
        warm_s = time.perf_counter() - started
    print(
        f"cold one-shot: {cold_s * 1000:.1f}ms, warm session: "
        f"{warm_s * 1000:.1f}ms, identical cost/rounds: "
        f"{(cold.cost, cold.rounds) == (warm_report.cost, warm_report.rounds)}"
    )
    print(
        f"session summary: {summary['runs']} runs, artifact cache "
        f"{summary['artifact_cache']['hits']} hits / "
        f"{summary['artifact_cache']['misses']} miss"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Walkthrough: the process execution substrate, oracle-verified.

The simulator charges the paper's cost model in a single process; the
``repro/parallel/`` substrate runs the same protocol rounds for real
across worker processes, with the simulated ledger as a byte-identical
oracle.  This example shows every layer of that stack:

1. run a registered protocol on the process backend through the
   ordinary engine facade (``repro.run(..., backend="process")``) and
   check its report matches the simulator run exactly,
2. drive a raw ``ParallelCluster`` round by hand with ``oracle=True``
   and let ``verify_oracle()`` prove the shared-memory workers
   produced byte-identical storage and ledger totals,
3. time a 10^5-element shuffle at 1 and 2 workers with the
   ``bench scale`` harness (`time_scale_case`) and print the scaling
   table — speedup is hardware-dependent, identity is not,
4. fan a batch of plans out with ``run_many(..., executor="process")``
   and confirm thread- and process-executed batches agree.

Run:  python examples/parallel_scaling.py
"""

from __future__ import annotations

import os

import numpy as np

import repro
from repro.analysis.scale import scale_table, time_scale_case
from repro.analysis.speed import fat_tree, prepare_uniform_hash
from repro.engine import RunPlan, run_many
from repro.util.text import render_table
from repro.parallel import ParallelCluster
from repro.parallel.pool import shutdown_pools


def engine_parity() -> None:
    """Same protocol, both substrates, identical reports."""
    tree = repro.fat_tree(2, 2, leaf_bandwidth=2.0)
    dist = repro.random_distribution(
        tree, r_size=800, s_size=800, intersection_size=200, seed=3
    )
    sim = repro.run("set-intersection", tree, dist, seed=5)
    par = repro.run(
        "set-intersection", tree, dist, seed=5,
        backend="process", num_workers=2,
    )
    print("engine parity (set-intersection, fat-tree(2x2)):")
    print(f"  sim      cost={sim.cost:10.1f}  rounds={sim.rounds}")
    print(f"  process  cost={par.cost:10.1f}  rounds={par.rounds}")
    assert (sim.cost, sim.rounds) == (par.cost, par.rounds)


def raw_round_with_oracle() -> None:
    """One hand-rolled shuffle round, A/B-checked against the sim."""
    tree = repro.two_level([4, 4], leaf_bandwidth=2.0)
    cluster = ParallelCluster(tree, num_workers=2, oracle=True)
    computes = cluster.compute_order
    with cluster.round() as ctx:
        for index, node in enumerate(computes):
            values = np.arange(index * 500, (index + 1) * 500, dtype=np.int64)
            ctx.exchange(
                node, values % len(computes), values,
                tag="shuffle", nodes=computes,
            )
    cluster.verify_oracle()  # raises OracleMismatch on any divergence
    print(
        f"raw round on {tree.name}: cost={cluster.ledger.total_cost():.1f}, "
        "oracle says byte-identical"
    )
    cluster.close()


def scaling_table() -> None:
    """The bench-scale harness on a small grid, printed as a table."""
    tree = fat_tree(4)
    prepared, label = prepare_uniform_hash(tree, 100_000, seed=7)
    cases = [
        time_scale_case(label, tree, prepared, workers, seed=7, repeats=2)
        for workers in (1, 2)
    ]
    for case in cases:
        case.baseline_seconds = cases[0].seconds
    print(f"scaling (cpu_count={os.cpu_count()}):")
    headers, rows = scale_table(cases)
    print(render_table(headers, rows))
    assert all(case.identical for case in cases)


def batch_executors() -> None:
    """run_many on threads vs the worker-process pool."""
    tree = repro.fat_tree(2, 2, leaf_bandwidth=2.0)
    plans = [
        RunPlan(
            task="sorting",
            tree=tree,
            distribution=repro.random_distribution(
                tree, r_size=600, s_size=600, intersection_size=0, seed=seed
            ),
            seed=seed,
        )
        for seed in (1, 2, 3)
    ]
    threaded = run_many(plans, executor="thread")
    processed = run_many(plans, executor="process", workers=2)
    costs = [report.cost for report in threaded]
    assert costs == [report.cost for report in processed]
    print(f"run_many executors agree on {len(plans)} sorting plans: {costs}")


def main() -> None:
    try:
        engine_parity()
        print()
        raw_round_with_oracle()
        print()
        scaling_table()
        print()
        batch_executors()
    finally:
        shutdown_pools()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A θ-join via cartesian product: weighted vs classic HyperCube.

Similarity joins, θ-joins and set-containment joins all reduce to
enumerating the cartesian product and filtering pairs locally
(Section 4's motivation).  This example runs a band-similarity join
``|r - s| <= τ`` on a star of machines with very different link speeds:
the weighted HyperCube gives each machine a grid square proportional to
its bandwidth (equation (1)), while the classic HyperCube's equal
squares make the slowest link the bottleneck.

Run:  python examples/similarity_join.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.util.text import render_table

TAU = 50  # similarity threshold


def count_similar_pairs(result) -> int:
    """Filter each node's assigned grid tile by the similarity predicate."""
    matches = 0
    for output in result.outputs.values():
        if "pairs" in output:
            pairs = output["pairs"]
            matches += int(np.sum(np.abs(pairs[:, 0] - pairs[:, 1]) <= TAU))
    return matches


def main() -> None:
    tree = repro.star(
        6, bandwidth=[16.0, 8.0, 4.0, 2.0, 1.0, 1.0], name="hetero-star"
    )
    size = 600
    rng = np.random.default_rng(4)
    r_values = rng.choice(100_000, size=size, replace=False).astype(np.int64)
    s_values = rng.choice(100_000, size=size, replace=False).astype(np.int64)
    nodes = tree.left_to_right_compute_order()
    dist = repro.Distribution(
        {
            node: {
                "R": chunk_r,
                "S": chunk_s,
            }
            for node, chunk_r, chunk_s in zip(
                nodes,
                np.array_split(r_values, len(nodes)),
                np.array_split(s_values, len(nodes)),
            )
        }
    )

    bound = repro.cartesian_lower_bound(tree, dist)
    weighted = repro.star_cartesian_product(tree, dist, materialize=True)
    classic = repro.classic_hypercube_cartesian_product(
        tree, dist, materialize=True
    )

    truth = int(
        np.sum(np.abs(r_values[:, None] - s_values[None, :]) <= TAU)
    )
    for name, result in (("wHC", weighted), ("classic HC", classic)):
        found = count_similar_pairs(result)
        assert found == truth, f"{name}: {found} != {truth}"

    rows = [
        ["weighted HyperCube", weighted.cost, weighted.cost / bound.value],
        ["classic HyperCube", classic.cost, classic.cost / bound.value],
    ]
    print(
        render_table(
            ["protocol", "cost", "ratio vs bound"],
            rows,
            title=(
                f"Similarity join |r-s|<={TAU} on {tree.name} "
                f"(|R|=|S|={size}, {truth} matching pairs, both exact)"
            ),
        )
    )
    print()
    square_dims = weighted.meta.get("dims", {})
    if square_dims:
        print("wHC square dimension per node (proportional to bandwidth):")
        for node in nodes:
            bandwidth = tree.bandwidth(node, "w")
            print(f"  {node}: bandwidth {bandwidth:4g} -> square {square_dims[node]}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Tracing walkthrough: where a run's cost and time actually go.

Runs topology-aware connected components on a fat tree under a
recording tracer, then reads the trace three ways:

1. the per-category metrics summary (how many rounds, how long);
2. the round-by-round attribution — each ``round`` span carries the
   Section 2 round cost, the bottleneck edge load, and the
   group/deliver/charge phase split the cluster measured while
   finalizing it, and the span costs sum exactly to the report's cost;
3. the Chrome-trace export — open the written file at
   ``chrome://tracing`` or https://ui.perfetto.dev to browse the
   engine → superstep → round hierarchy on a timeline (add
   ``--backend process`` workloads and worker ranks appear as their
   own timeline rows).

Run:  python examples/trace_run.py
"""

from __future__ import annotations

import repro


def main() -> None:
    tree = repro.fat_tree(4, 4)
    dist = repro.random_graph_distribution(
        tree, num_edges=2_000, policy="proportional", seed=7
    )

    # Everything dispatched inside the block lands in one trace.
    with repro.tracing() as tracer:
        report = repro.run_components(tree, dist, seed=7)

    print(f"{report.task} on {report.topology}: cost {report.cost:.1f} "
          f"in {report.rounds} rounds ({report.wall_time_s:.3f}s)\n")

    # 1. The flat summary: spans aggregated by category.
    summary = repro.span_metrics(tracer)
    print("span category     count   total")
    for category, bucket in sorted(summary["spans"].items()):
        print(f"{category:<16}  {bucket['count']:>5}   "
              f"{bucket['total_s'] * 1e3:8.2f}ms")
    print()

    # 2. Round attribution: the ledger facts ride on the round spans,
    #    and their costs sum to the report's cost exactly.
    rounds = [e for e in tracer.events
              if e.attrs.get("category") == "round"]
    print("round   cost     max-edge-load   group/deliver/charge")
    for event in rounds[:5]:
        attrs = event.attrs
        phases = "/".join(
            f"{attrs[key] * 1e3:.2f}ms"
            for key in ("t_group_s", "t_deliver_s", "t_charge_s")
        )
        print(f"{attrs['round']:>5}   {attrs['round_cost']:<8.1f} "
              f"{attrs['max_edge_load']:>13}   {phases}")
    if len(rounds) > 5:
        print(f"  ... {len(rounds) - 5} more rounds")
    total = sum(event.attrs["round_cost"] for event in rounds)
    print(f"sum of round-span costs: {total:.2f} "
          f"(report.cost = {report.cost:.2f})\n")
    assert abs(total - report.cost) < 1e-9

    # 3. The browsable timeline, metrics embedded alongside.
    path = "components.trace.json"
    repro.write_chrome_trace(path, tracer, metrics=summary)
    print(f"wrote {path} — open it at chrome://tracing or "
          "https://ui.perfetto.dev")


if __name__ == "__main__":
    main()

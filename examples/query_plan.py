#!/usr/bin/env python3
"""Walkthrough: the topology-aware query planner end to end.

The paper motivates its cost model with relational query processing;
this example runs an actual SQL-shaped query

    SELECT x3, SUM(x0)
    FROM R0 JOIN R1 ON R0.x1 = R1.x1
            JOIN R2 ON R1.x2 = R2.x2
    WHERE R0.x0 <= 400
    GROUP BY x3

through the planner on a heterogeneous two-rack cluster, showing

1. the logical plan (what the query asks),
2. the physical plan the cost-based optimizer chose — join order plus
   a registered protocol per stage (``--explain`` in the CLI),
3. the executed pipeline's per-stage measured cost against the
   optimizer's estimates, and
4. the same query compiled with the gather-everything and worst-order
   strategies, so the planner's win is a number, not a claim.

Run:  python examples/query_plan.py
"""

from __future__ import annotations

import repro
from repro.plan import (
    Filter,
    GroupBy,
    Join,
    JoinCondition,
    Scan,
    chain_catalog,
    evaluate_reference,
    optimize,
)
from repro.util.text import render_table


def main() -> None:
    tree = repro.two_level(
        [4, 4], leaf_bandwidth=2.0, uplink_bandwidth=2.0, name="two racks",
    )

    # Base relations R0(x0,x1), R1(x1,x2), R2(x2,x3): a chain query,
    # placed proportionally to link bandwidth (the regime a production
    # loader would aim for; try zipf or single-heavy placements, or
    # slow down one rack's leaves, to watch the optimizer switch
    # stages over to the gather baseline instead).
    catalog = chain_catalog(
        tree, num_relations=3, rows=4_000, key_space=512, seed=11,
        policy="proportional",
    )

    query = GroupBy(
        Join(
            inputs=(
                Filter(Scan("R0"), "x0", "<=", 400),
                Scan("R1"),
                Scan("R2"),
            ),
            conditions=(
                JoinCondition(0, "x1", 1, "x1"),
                JoinCondition(1, "x2", 2, "x2"),
            ),
        ),
        key="x3",
        value="x0",
        op="sum",
    )
    print("Logical plan:")
    print(f"  {query.describe()}")
    print()

    # The optimizer picks the join order and a protocol per stage.
    physical = optimize(query, tree, catalog)
    print(physical.explain())
    print()

    # Execute; every intermediate materializes as a new Distribution.
    report, output = repro.run_plan(
        query, tree, catalog, seed=1, keep_output=True
    )
    print(report.summarize())
    print()

    # Verify against a single-machine reference evaluation.
    assert output.multiset() == evaluate_reference(query, catalog)
    print(f"Output verified against the in-memory reference "
          f"({report.output_rows} groups).")
    print()

    # The same query under the baseline strategies.
    rows = []
    for strategy in ("optimized", "gather", "worst-order"):
        strategy_report = repro.run_plan(
            query, tree, catalog, strategy=strategy, seed=1
        )
        rows.append(
            [
                strategy,
                f"{strategy_report.cost:.0f}",
                f"{strategy_report.estimated_cost:.0f}",
                strategy_report.rounds,
            ]
        )
    print(
        render_table(
            ["strategy", "measured cost", "estimated", "rounds"],
            rows,
            title=f"Strategy comparison on '{tree.name}'",
        )
    )


if __name__ == "__main__":
    main()

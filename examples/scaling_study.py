#!/usr/bin/env python3
"""Scaling study: cost vs input size for all three tasks, with charts.

Sweeps N over a fat tree and plots, per task, the measured model cost of
the topology-aware algorithm against its lower bound (log-log ASCII
charts).  Parallel lines at constant vertical offset are exactly the
paper's guarantee: single-round protocols with constant (or polylog)
optimality ratios at every scale.

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

import repro
from repro.analysis.sweeps import Sweep

SIZES = [1_000, 4_000, 16_000, 64_000]


def main() -> None:
    tree = repro.fat_tree(2, 3, leaf_bandwidth=1.0, level_scale=1.5)
    print(f"Topology: {tree.name} with {tree.num_compute_nodes} compute nodes")
    print()

    def make_instance(size: int):
        return repro.random_distribution(
            tree, r_size=size, s_size=size, policy="zipf", seed=29
        )

    studies = {
        "set intersection": (
            lambda d: repro.tree_intersect(tree, d, seed=1).cost,
            lambda d: repro.intersection_lower_bound(tree, d).value,
        ),
        "cartesian product": (
            lambda d: repro.tree_cartesian_product(tree, d).cost,
            lambda d: repro.cartesian_lower_bound(tree, d).value,
        ),
        "sorting": (
            lambda d: repro.weighted_terasort(tree, d, seed=1).cost,
            lambda d: repro.sorting_lower_bound(tree, d).value,
        ),
    }

    for task, (cost_of, bound_of) in studies.items():
        sweep = Sweep(f"{task}: cost vs N (log-log)")
        for size in SIZES:
            dist = make_instance(size)
            sweep.add("measured cost", 2 * size, cost_of(dist))
            sweep.add("lower bound", 2 * size, bound_of(dist))
        print(sweep.chart(log_x=True, log_y=True, width=56, height=12))
        ratios = sweep.ratios("measured cost", "lower bound")
        print(
            f"ratio across the sweep: "
            f"{min(ratios):.2f} .. {max(ratios):.2f}"
        )
        print()


if __name__ == "__main__":
    main()

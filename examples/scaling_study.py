#!/usr/bin/env python3
"""Scaling study: cost vs input size for all three tasks, with charts.

Sweeps N over a fat tree and plots, per task, the measured model cost of
the topology-aware algorithm against its lower bound (log-log ASCII
charts).  Parallel lines at constant vertical offset are exactly the
paper's guarantee: single-round protocols with constant (or polylog)
optimality ratios at every scale.

Run:  python examples/scaling_study.py
"""

from __future__ import annotations

import repro
from repro.analysis.sweeps import Sweep

SIZES = [1_000, 4_000, 16_000, 64_000]


def main() -> None:
    tree = repro.fat_tree(2, 3, leaf_bandwidth=1.0, level_scale=1.5)
    print(f"Topology: {tree.name} with {tree.num_compute_nodes} compute nodes")
    print()

    def make_instance(n_total: int):
        size = n_total // 2
        return tree, repro.random_distribution(
            tree, r_size=size, s_size=size, policy="zipf", seed=29
        )

    # Each task's topology-aware default, swept through the engine; the
    # registry knows which protocols take a seed, so one call covers all.
    studies = {
        "set-intersection": "tree",
        "cartesian-product": "tree",
        "sorting": "wts",
    }

    for task, protocol in studies.items():
        sweep = Sweep(f"{task}: cost vs N (log-log)")
        sweep.run_protocols(
            [2 * size for size in SIZES],
            make_instance,
            task=task,
            protocols=[protocol],
            seed=1,
        )
        print(sweep.chart(log_x=True, log_y=True, width=56, height=12))
        ratios = sweep.ratios(protocol, "lower-bound")
        print(
            f"ratio across the sweep: "
            f"{min(ratios):.2f} .. {max(ratios):.2f}"
        )
        print()


if __name__ == "__main__":
    main()

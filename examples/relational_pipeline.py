#!/usr/bin/env python3
"""A small analytical pipeline: group-by + join, topology-aware.

The paper's conclusion points at "a simple join between two relations,
and continuing to ensembles of tasks in more complex queries" as the
next step for the model.  This example runs exactly such an ensemble on
a heterogeneous two-rack cluster:

    SELECT o.customer, SUM(o.amount), c.region
    FROM orders o JOIN customers c ON o.customer = c.id
    GROUP BY o.customer, c.region

as two topology-aware operators over the same substrate: a group-by
aggregation of the orders (with local pre-aggregation), then an
equi-join of the per-customer totals against the customer dimension
table.  Every intermediate is verified against a single-machine
reference.

Run:  python examples/relational_pipeline.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.util.text import render_table


def main() -> None:
    tree = repro.two_level(
        [4, 4], leaf_bandwidth=[4.0, 1.0], uplink_bandwidth=2.0,
        name="two racks",
    )
    nodes = tree.left_to_right_compute_order()
    rng = np.random.default_rng(20)

    # Fact table: 40k orders over 600 customers, skewed across racks.
    num_orders, num_customers = 40_000, 600
    order_customers = rng.zipf(1.3, size=num_orders) % num_customers
    order_amounts = rng.integers(1, 500, size=num_orders)

    # Dimension table: one row per customer with a region id payload.
    customer_ids = np.arange(num_customers)
    customer_regions = rng.integers(0, 8, size=num_customers)

    orders = repro.encode_tuples(
        order_customers, order_amounts, payload_bits=32
    )
    sizes = repro.place_zipf(num_orders, nodes, exponent=1.0)
    fact_dist = repro.distribute(orders, sizes, tag="R")

    # Stage 1: pre-aggregated, placement-weighted group-by.
    totals = repro.tree_groupby_aggregate(
        tree, fact_dist, op="sum", seed=1, payload_bits=32
    )
    reference = {}
    for customer, amount in zip(order_customers, order_amounts):
        reference[int(customer)] = reference.get(int(customer), 0) + int(amount)
    merged = {}
    for node_output in totals.outputs.values():
        merged.update(node_output)
    assert merged == reference, "group-by mismatch"

    # Stage 2: join per-customer totals against the dimension table.
    # The totals stay where stage 1 left them — no reshuffle in between.
    total_placements = {}
    for node in nodes:
        rows = totals.outputs.get(node, {})
        total_placements[node] = {
            "R": repro.encode_tuples(
                list(rows.keys()), list(rows.values()), payload_bits=32
            )
        }
    dim_dist = repro.distribute(
        repro.encode_tuples(customer_ids, customer_regions, payload_bits=32),
        repro.place_uniform(num_customers, nodes),
        tag="S",
    )
    join_input = repro.Distribution(
        {
            node: {
                "R": total_placements[node]["R"],
                "S": dim_dist.fragment(node, "S"),
            }
            for node in nodes
        }
    )
    joined = repro.tree_equijoin(
        tree, join_input, seed=2, payload_bits=32, materialize=True
    )
    rows = []
    for output in joined.outputs.values():
        if "pairs" in output:
            rows.extend(map(tuple, output["pairs"].tolist()))
    assert len(rows) == len(reference), "join row count mismatch"

    print(
        render_table(
            ["stage", "rounds", "model cost (elements)"],
            [
                ["group-by (pre-aggregated)", totals.rounds, f"{totals.cost:.0f}"],
                ["join vs dimension table", joined.rounds, f"{joined.cost:.0f}"],
            ],
            title=(
                f"Pipeline over {num_orders} orders, {num_customers} "
                f"customers on '{tree.name}'"
            ),
        )
    )
    print()
    ablation = repro.tree_groupby_aggregate(
        tree, fact_dist, op="sum", seed=1, payload_bits=32,
        pre_aggregate=False,
    )
    print(
        f"Combiner effect: shipping raw orders would cost "
        f"{ablation.cost:.0f} instead of {totals.cost:.0f} "
        f"({ablation.cost / totals.cost:.1f}x more)."
    )
    sample = sorted(rows)[:3]
    print(f"Sample output rows (customer, total, region): {sample}")


if __name__ == "__main__":
    main()
